//! Schemas for tabular categorical data.
//!
//! A [`Schema`] describes the attributes (columns) of a categorical table
//! and interns the value domain of each attribute. Cell values are stored
//! as small dense codes (`u16`) into the per-attribute domain, which keeps
//! tables compact and makes one-hot encoding and item conversion trivial.

use std::collections::HashMap;

use crate::error::{Result, RockError};

use super::item::AttrId;

/// Description of one categorical attribute: its name and value domain.
#[derive(Debug, Clone, Default)]
pub struct Attribute {
    /// Human-readable column name.
    pub name: String,
    values: Vec<String>,
    index: HashMap<String, u16>,
}

impl Attribute {
    /// Creates an attribute with the given name and an empty domain.
    pub fn new(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            values: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Number of distinct values observed for this attribute.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    /// Interns a value, returning its dense code.
    ///
    /// # Errors
    /// Returns [`RockError::DomainTooLarge`] if the attribute already holds
    /// `u16::MAX + 1` distinct values — categorical domains that size are
    /// almost always a parsing bug, and silently wrapping codes would
    /// corrupt every downstream item id.
    pub fn intern(&mut self, value: &str) -> Result<u16> {
        if let Some(&c) = self.index.get(value) {
            return Ok(c);
        }
        let code = u16::try_from(self.values.len()).map_err(|_| RockError::DomainTooLarge {
            attribute: self.name.clone(),
            cardinality: self.values.len(),
        })?;
        self.values.push(value.to_owned());
        self.index.insert(value.to_owned(), code);
        Ok(code)
    }

    /// Looks up the code of a value without interning.
    pub fn code(&self, value: &str) -> Option<u16> {
        self.index.get(value).copied()
    }

    /// Returns the textual value for a code.
    pub fn value(&self, code: u16) -> Option<&str> {
        self.values.get(usize::from(code)).map(String::as_str)
    }

    /// Iterates the domain in code order.
    pub fn values(&self) -> impl Iterator<Item = &str> {
        self.values.iter().map(String::as_str)
    }
}

/// Ordered collection of [`Attribute`]s.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a schema with `d` attributes named `a0..a{d-1}`.
    pub fn with_unnamed(d: usize) -> Self {
        Schema {
            attributes: (0..d).map(|i| Attribute::new(format!("a{i}"))).collect(),
        }
    }

    /// Creates a schema from column names.
    pub fn with_names<S: Into<String>, I: IntoIterator<Item = S>>(names: I) -> Self {
        Schema {
            attributes: names.into_iter().map(Attribute::new).collect(),
        }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Returns `true` if the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Immutable access to an attribute.
    pub fn attribute(&self, attr: AttrId) -> Option<&Attribute> {
        self.attributes.get(attr.index())
    }

    /// Mutable access to an attribute (for interning during load).
    pub fn attribute_mut(&mut self, attr: AttrId) -> Option<&mut Attribute> {
        self.attributes.get_mut(attr.index())
    }

    /// Iterates `(AttrId, &Attribute)` in column order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId(crate::cast::usize_to_u16(i)), a))
    }

    /// Iterates `(AttrId, &mut Attribute)` in column order (for loaders
    /// interning values).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (AttrId, &mut Attribute)> {
        self.attributes
            .iter_mut()
            .enumerate()
            .map(|(i, a)| (AttrId(crate::cast::usize_to_u16(i)), a))
    }

    /// Total number of `(attribute, value)` pairs across all domains — the
    /// width of a one-hot encoding and the size of the derived item universe.
    pub fn total_cardinality(&self) -> usize {
        self.attributes.iter().map(Attribute::cardinality).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_codes() {
        let mut a = Attribute::new("color");
        assert_eq!(a.intern("red").unwrap(), 0);
        assert_eq!(a.intern("blue").unwrap(), 1);
        assert_eq!(a.intern("red").unwrap(), 0);
        assert_eq!(a.cardinality(), 2);
        assert_eq!(a.value(1), Some("blue"));
        assert_eq!(a.code("blue"), Some(1));
        assert_eq!(a.code("green"), None);
    }

    #[test]
    fn intern_rejects_oversized_domains() {
        let mut a = Attribute::new("numeric-by-mistake");
        for i in 0..=u32::from(u16::MAX) {
            a.intern(&format!("v{i}")).unwrap();
        }
        let err = a.intern("one too many").unwrap_err();
        assert!(matches!(
            err,
            RockError::DomainTooLarge { cardinality, .. } if cardinality == 65_536
        ));
        // Re-interning an existing value still succeeds.
        assert_eq!(a.intern("v0").unwrap(), 0);
    }

    #[test]
    fn schema_with_unnamed_columns() {
        let s = Schema::with_unnamed(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.attribute(AttrId(2)).unwrap().name, "a2");
        assert!(s.attribute(AttrId(3)).is_none());
    }

    #[test]
    fn schema_with_names() {
        let s = Schema::with_names(["cap-shape", "odor"]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.attribute(AttrId(1)).unwrap().name, "odor");
    }

    #[test]
    fn total_cardinality_sums_domains() {
        let mut s = Schema::with_unnamed(2);
        s.attribute_mut(AttrId(0)).unwrap().intern("y").unwrap();
        s.attribute_mut(AttrId(0)).unwrap().intern("n").unwrap();
        s.attribute_mut(AttrId(1)).unwrap().intern("x").unwrap();
        assert_eq!(s.total_cardinality(), 3);
    }

    #[test]
    fn iter_yields_in_order() {
        let s = Schema::with_names(["u", "v"]);
        let names: Vec<&str> = s.iter().map(|(_, a)| a.name.as_str()).collect();
        assert_eq!(names, vec!["u", "v"]);
    }

    #[test]
    fn attribute_values_in_code_order() {
        let mut a = Attribute::new("x");
        a.intern("c").unwrap();
        a.intern("a").unwrap();
        let vals: Vec<&str> = a.values().collect();
        assert_eq!(vals, vec!["c", "a"]);
    }
}
