//! Transactions: the point representation ROCK clusters.
//!
//! A [`Transaction`] is a *set* of items stored as a sorted, deduplicated
//! `Vec<u32>`. Set intersections and unions — the primitives behind the
//! Jaccard coefficient — are computed by linear merges over the sorted
//! slices, which is the dominant operation of the `O(n²)` neighbor phase
//! and therefore kept allocation-free.

use crate::error::{Result, RockError};

use super::item::ItemId;

/// A set of items (sorted, deduplicated).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Transaction {
    items: Vec<u32>,
}

impl Transaction {
    /// Creates a transaction from arbitrary item ids; sorts and dedups.
    pub fn new<I: IntoIterator<Item = u32>>(items: I) -> Self {
        let mut items: Vec<u32> = items.into_iter().collect();
        items.sort_unstable();
        items.dedup();
        Transaction { items }
    }

    /// Creates a transaction from a slice already sorted and deduplicated.
    ///
    /// In debug builds the precondition is checked; in release builds it is
    /// trusted (generators use this to skip re-sorting).
    pub fn from_sorted(items: Vec<u32>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "from_sorted requires strictly increasing items"
        );
        Transaction { items }
    }

    /// Creates an empty transaction.
    pub fn empty() -> Self {
        Transaction { items: Vec::new() }
    }

    /// Number of items in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the transaction holds no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The sorted item ids.
    #[inline]
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Iterates the items as [`ItemId`]s.
    pub fn iter_ids(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.items.iter().copied().map(ItemId)
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, item: u32) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Size of the intersection with `other` (linear merge).
    pub fn intersection_len(&self, other: &Transaction) -> usize {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        let (a, b) = (&self.items, &other.items);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Size of the union with `other` (via inclusion–exclusion).
    #[inline]
    pub fn union_len(&self, other: &Transaction) -> usize {
        self.len() + other.len() - self.intersection_len(other)
    }

    /// Validates that every item id is `< universe`.
    pub fn validate(&self, universe: usize) -> Result<()> {
        match self.items.last() {
            Some(&last) if crate::cast::u32_to_usize(last) >= universe => {
                Err(RockError::ItemOutOfRange {
                    item: last,
                    universe,
                })
            }
            _ => Ok(()),
        }
    }
}

impl FromIterator<u32> for Transaction {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Transaction::new(iter)
    }
}

impl<'a> IntoIterator for &'a Transaction {
    type Item = u32;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, u32>>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let t = Transaction::new([3, 1, 2, 3, 1]);
        assert_eq!(t.items(), &[1, 2, 3]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn empty_transaction() {
        let t = Transaction::empty();
        assert!(t.is_empty());
        assert_eq!(t.intersection_len(&Transaction::new([1, 2])), 0);
        assert_eq!(t.union_len(&Transaction::new([1, 2])), 2);
    }

    #[test]
    fn intersection_and_union() {
        let a = Transaction::new([1, 2, 3, 4]);
        let b = Transaction::new([3, 4, 5]);
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(b.intersection_len(&a), 2);
        assert_eq!(a.union_len(&b), 5);
    }

    #[test]
    fn disjoint_sets() {
        let a = Transaction::new([1, 2]);
        let b = Transaction::new([3, 4]);
        assert_eq!(a.intersection_len(&b), 0);
        assert_eq!(a.union_len(&b), 4);
    }

    #[test]
    fn identical_sets() {
        let a = Transaction::new([5, 6, 7]);
        assert_eq!(a.intersection_len(&a.clone()), 3);
        assert_eq!(a.union_len(&a.clone()), 3);
    }

    #[test]
    fn contains_uses_binary_search() {
        let t = Transaction::new([10, 20, 30]);
        assert!(t.contains(20));
        assert!(!t.contains(25));
    }

    #[test]
    fn validate_bounds() {
        let t = Transaction::new([0, 4]);
        assert!(t.validate(5).is_ok());
        assert_eq!(
            t.validate(4),
            Err(RockError::ItemOutOfRange {
                item: 4,
                universe: 4
            })
        );
        assert!(Transaction::empty().validate(0).is_ok());
    }

    #[test]
    fn from_sorted_trusts_input() {
        let t = Transaction::from_sorted(vec![1, 5, 9]);
        assert_eq!(t.items(), &[1, 5, 9]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn from_sorted_checks_in_debug() {
        let _ = Transaction::from_sorted(vec![5, 1]);
    }

    #[test]
    fn iterates_item_ids() {
        let t = Transaction::new([2, 0]);
        let ids: Vec<ItemId> = t.iter_ids().collect();
        assert_eq!(ids, vec![ItemId(0), ItemId(2)]);
        let raw: Vec<u32> = (&t).into_iter().collect();
        assert_eq!(raw, vec![0, 2]);
    }
}
