//! [`TransactionSet`]: the collection type the clustering pipeline consumes.

use crate::error::Result;

use super::transaction::Transaction;
use super::vocabulary::Vocabulary;

/// An indexed collection of [`Transaction`]s over a common item universe.
#[derive(Debug, Clone, Default)]
pub struct TransactionSet {
    transactions: Vec<Transaction>,
    universe: usize,
    vocabulary: Option<Vocabulary>,
}

impl TransactionSet {
    /// Creates a set from transactions and the universe size (number of
    /// distinct items; ids must be `< universe`).
    pub fn new(transactions: Vec<Transaction>, universe: usize) -> Self {
        TransactionSet {
            transactions,
            universe,
            vocabulary: None,
        }
    }

    /// Creates a set carrying a [`Vocabulary`] for rendering items.
    pub fn with_vocabulary(
        transactions: Vec<Transaction>,
        universe: usize,
        vocabulary: Vocabulary,
    ) -> Self {
        TransactionSet {
            transactions,
            universe,
            vocabulary: Some(vocabulary),
        }
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Returns `true` if the set holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Size of the item universe.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The attached vocabulary, if any.
    pub fn vocabulary(&self) -> Option<&Vocabulary> {
        self.vocabulary.as_ref()
    }

    /// Returns transaction `i`.
    pub fn transaction(&self, i: usize) -> Option<&Transaction> {
        self.transactions.get(i)
    }

    /// All transactions as a slice.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Iterates over the transactions.
    pub fn iter(&self) -> std::slice::Iter<'_, Transaction> {
        self.transactions.iter()
    }

    /// Mean transaction size (items per transaction).
    pub fn mean_size(&self) -> f64 {
        if self.transactions.is_empty() {
            return 0.0;
        }
        let total: usize = self.transactions.iter().map(Transaction::len).sum();
        crate::cast::usize_to_f64(total) / crate::cast::usize_to_f64(self.transactions.len())
    }

    /// Validates every transaction against the universe bound.
    pub fn validate(&self) -> Result<()> {
        for t in &self.transactions {
            t.validate(self.universe)?;
        }
        Ok(())
    }

    /// Builds a new set restricted to the given indices (preserving order);
    /// used by the sampling phase. Indices must be in range.
    pub fn subset(&self, indices: &[usize]) -> TransactionSet {
        TransactionSet {
            transactions: indices
                .iter()
                .map(|&i| self.transactions[i].clone())
                .collect(),
            universe: self.universe,
            vocabulary: self.vocabulary.clone(),
        }
    }
}

impl FromIterator<Transaction> for TransactionSet {
    /// Collects transactions, inferring the universe as `max item + 1`.
    fn from_iter<I: IntoIterator<Item = Transaction>>(iter: I) -> Self {
        let transactions: Vec<Transaction> = iter.into_iter().collect();
        let universe = transactions
            .iter()
            .filter_map(|t| t.items().last().copied())
            .max()
            .map_or(0, |m| crate::cast::u32_to_usize(m) + 1);
        TransactionSet::new(transactions, universe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TransactionSet {
        vec![
            Transaction::new([0, 1, 2]),
            Transaction::new([1, 2, 3]),
            Transaction::new([7]),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn from_iter_infers_universe() {
        let ts = sample();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.universe(), 8);
        assert!(ts.validate().is_ok());
    }

    #[test]
    fn empty_set() {
        let ts: TransactionSet = Vec::new().into_iter().collect();
        assert!(ts.is_empty());
        assert_eq!(ts.universe(), 0);
        assert_eq!(ts.mean_size(), 0.0);
    }

    #[test]
    fn mean_size() {
        let ts = sample();
        assert!((ts.mean_size() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn subset_preserves_order_and_universe() {
        let ts = sample();
        let sub = ts.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.transaction(0).unwrap().items(), &[7]);
        assert_eq!(sub.transaction(1).unwrap().items(), &[0, 1, 2]);
        assert_eq!(sub.universe(), 8);
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let ts = TransactionSet::new(vec![Transaction::new([5])], 3);
        assert!(ts.validate().is_err());
    }

    #[test]
    fn iter_and_slice_access() {
        let ts = sample();
        assert_eq!(ts.iter().count(), 3);
        assert_eq!(ts.transactions().len(), 3);
        assert!(ts.transaction(9).is_none());
    }
}
