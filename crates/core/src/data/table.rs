//! Tabular categorical data: rows of coded attribute values.
//!
//! A [`CategoricalTable`] stores each cell as `Option<u16>` — a dense code
//! into the attribute's domain, or `None` for a missing value ('?' in UCI
//! files). Tables convert to [`TransactionSet`]s by mapping every present
//! `(attribute, value)` cell to an item, exactly how the ROCK paper handles
//! the Congressional Votes and Mushroom datasets: records that agree on an
//! attribute share an item, missing values simply contribute nothing.

use crate::cast;
use crate::error::{Result, RockError};

use super::dataset::TransactionSet;
use super::schema::Schema;
use super::transaction::Transaction;
use super::vocabulary::Vocabulary;

/// A table of categorical records over a shared [`Schema`].
#[derive(Debug, Clone, Default)]
pub struct CategoricalTable {
    schema: Schema,
    rows: Vec<Vec<Option<u16>>>,
}

impl CategoricalTable {
    /// Creates an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        CategoricalTable {
            schema,
            rows: Vec::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Mutable schema access (used by loaders while interning values).
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of attributes.
    pub fn num_attributes(&self) -> usize {
        self.schema.len()
    }

    /// Returns a row's coded cells.
    pub fn row(&self, i: usize) -> Option<&[Option<u16>]> {
        self.rows.get(i).map(Vec::as_slice)
    }

    /// Iterates all rows.
    pub fn rows(&self) -> impl Iterator<Item = &[Option<u16>]> {
        self.rows.iter().map(Vec::as_slice)
    }

    /// Appends a row of already-coded cells.
    ///
    /// # Errors
    /// Returns [`RockError::LengthMismatch`] if the row width differs from
    /// the schema.
    pub fn push_coded(&mut self, row: Vec<Option<u16>>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(RockError::LengthMismatch {
                left_name: "row",
                left: row.len(),
                right_name: "schema",
                right: self.schema.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Appends a row of textual cells, interning values into the schema.
    /// `missing` cells (e.g. `"?"`) become `None`.
    ///
    /// # Errors
    /// Returns [`RockError::LengthMismatch`] if the row width differs from
    /// the schema, or [`RockError::DomainTooLarge`] if interning a cell
    /// would overflow an attribute's `u16` code space.
    pub fn push_textual(&mut self, cells: &[&str], missing: &str) -> Result<()> {
        if cells.len() != self.schema.len() {
            return Err(RockError::LengthMismatch {
                left_name: "row",
                left: cells.len(),
                right_name: "schema",
                right: self.schema.len(),
            });
        }
        let mut coded: Vec<Option<u16>> = Vec::with_capacity(cells.len());
        for ((_, attr), &cell) in self.schema.iter_mut().zip(cells) {
            coded.push(if cell == missing {
                None
            } else {
                Some(attr.intern(cell)?)
            });
        }
        self.rows.push(coded);
        Ok(())
    }

    /// Fraction of cells that are missing.
    pub fn missing_fraction(&self) -> f64 {
        let total = self.rows.len() * self.schema.len();
        if total == 0 {
            return 0.0;
        }
        let missing: usize = self
            .rows
            .iter()
            .map(|r| r.iter().filter(|c| c.is_none()).count())
            .sum();
        cast::usize_to_f64(missing) / cast::usize_to_f64(total)
    }

    /// Converts the table to a [`TransactionSet`]: each present
    /// `(attribute, value)` cell becomes one item.
    ///
    /// The returned set carries a [`Vocabulary`] so cluster summaries can be
    /// rendered back to attribute/value names.
    pub fn to_transactions(&self) -> TransactionSet {
        let mut vocab = Vocabulary::new();
        // Pre-intern the whole schema in (attr, code) order so item ids are
        // stable regardless of row order.
        let mut base: Vec<u32> = Vec::with_capacity(self.schema.len());
        for (attr, a) in self.schema.iter() {
            for value in a.values() {
                let id = vocab.intern(attr, value);
                let _ = id;
            }
            // Record the running offset of this attribute's first item.
            let _ = attr;
        }
        // Offsets: item id of (attr, code) = offset[attr] + code.
        let mut offset = 0u32;
        base.clear();
        for (_, a) in self.schema.iter() {
            base.push(offset);
            offset += cast::usize_to_u32(a.cardinality());
        }
        let transactions: Vec<Transaction> = self
            .rows
            .iter()
            .map(|row| {
                let items: Vec<u32> = row
                    .iter()
                    .enumerate()
                    .filter_map(|(a, cell)| cell.map(|code| base[a] + u32::from(code)))
                    .collect();
                // Items are strictly increasing by construction (attribute
                // order, one item per attribute).
                Transaction::from_sorted(items)
            })
            .collect();
        TransactionSet::with_vocabulary(transactions, cast::u32_to_usize(offset), vocab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::AttrId;

    fn sample_table() -> CategoricalTable {
        let mut t = CategoricalTable::new(Schema::with_names(["vote1", "vote2"]));
        t.push_textual(&["y", "n"], "?").unwrap();
        t.push_textual(&["y", "?"], "?").unwrap();
        t.push_textual(&["n", "n"], "?").unwrap();
        t
    }

    #[test]
    fn push_textual_interns_values() {
        let t = sample_table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.schema().attribute(AttrId(0)).unwrap().cardinality(), 2);
        assert_eq!(t.schema().attribute(AttrId(1)).unwrap().cardinality(), 1);
        assert_eq!(t.row(1).unwrap(), &[Some(0), None]);
    }

    #[test]
    fn row_width_is_validated() {
        let mut t = CategoricalTable::new(Schema::with_unnamed(2));
        assert!(t.push_textual(&["a"], "?").is_err());
        assert!(t.push_coded(vec![Some(0)]).is_err());
    }

    #[test]
    fn missing_fraction_counts_none_cells() {
        let t = sample_table();
        assert!((t.missing_fraction() - 1.0 / 6.0).abs() < 1e-12);
        let empty = CategoricalTable::new(Schema::with_unnamed(2));
        assert_eq!(empty.missing_fraction(), 0.0);
    }

    #[test]
    fn to_transactions_maps_cells_to_items() {
        let t = sample_table();
        let ts = t.to_transactions();
        assert_eq!(ts.len(), 3);
        // vote1 domain {y=0, n=1} occupies items 0..2; vote2 {n=0} is item 2.
        assert_eq!(ts.transaction(0).unwrap().items(), &[0, 2]);
        assert_eq!(ts.transaction(1).unwrap().items(), &[0]);
        assert_eq!(ts.transaction(2).unwrap().items(), &[1, 2]);
        assert_eq!(ts.universe(), 3);
    }

    #[test]
    fn transactions_share_items_iff_rows_agree() {
        let t = sample_table();
        let ts = t.to_transactions();
        // Rows 0 and 1 agree on vote1=y.
        assert_eq!(
            ts.transaction(0)
                .unwrap()
                .intersection_len(ts.transaction(1).unwrap()),
            1
        );
        // Rows 0 and 2 agree only on vote2=n.
        assert_eq!(
            ts.transaction(0)
                .unwrap()
                .intersection_len(ts.transaction(2).unwrap()),
            1
        );
        // Rows 1 and 2 agree on nothing.
        assert_eq!(
            ts.transaction(1)
                .unwrap()
                .intersection_len(ts.transaction(2).unwrap()),
            0
        );
    }

    #[test]
    fn vocabulary_describes_items() {
        let t = sample_table();
        let ts = t.to_transactions();
        let vocab = ts.vocabulary().unwrap();
        assert_eq!(vocab.describe(crate::data::ItemId(0)), "a0=y");
        assert_eq!(vocab.describe(crate::data::ItemId(2)), "a1=n");
    }
}
