//! Interning of item names to dense [`ItemId`]s.
//!
//! A [`Vocabulary`] maps item *keys* — an `(attribute, value)` pair for
//! tabular data, or a bare name for market-basket data — to dense item ids,
//! and back. Dense ids let the hot paths (neighbor and link computation)
//! work on sorted `u32` slices instead of strings.

use std::collections::HashMap;

use super::item::{AttrId, ItemId};

/// A single interned item key: the attribute it belongs to and its textual
/// value. Market-basket items use the reserved attribute [`Vocabulary::BASKET_ATTR`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ItemKey {
    /// The attribute the value belongs to.
    pub attr: AttrId,
    /// The textual value.
    pub value: String,
}

/// Bidirectional map between item keys and dense [`ItemId`]s.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    forward: HashMap<ItemKey, ItemId>,
    reverse: Vec<ItemKey>,
}

impl Vocabulary {
    /// Attribute id used for free-standing (market-basket) items.
    pub const BASKET_ATTR: AttrId = AttrId(u16::MAX);

    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct items interned so far.
    pub fn len(&self) -> usize {
        self.reverse.len()
    }

    /// Returns `true` if no item has been interned.
    pub fn is_empty(&self) -> bool {
        self.reverse.is_empty()
    }

    /// Interns `(attr, value)` and returns its id, allocating a fresh id on
    /// first sight.
    pub fn intern(&mut self, attr: AttrId, value: &str) -> ItemId {
        if let Some(&id) = self.forward.get(&ItemKey {
            attr,
            value: value.to_owned(),
        }) {
            return id;
        }
        let key = ItemKey {
            attr,
            value: value.to_owned(),
        };
        let id = ItemId(crate::cast::usize_to_u32(self.reverse.len()));
        self.reverse.push(key.clone());
        self.forward.insert(key, id);
        id
    }

    /// Interns a market-basket item by bare name.
    pub fn intern_basket(&mut self, name: &str) -> ItemId {
        self.intern(Self::BASKET_ATTR, name)
    }

    /// Looks up an already-interned `(attr, value)` pair.
    pub fn get(&self, attr: AttrId, value: &str) -> Option<ItemId> {
        // Avoid allocating for the common hit path by probing with a
        // temporary key; HashMap requires an owned key type here, so we
        // construct one — lookups are not on the clustering hot path.
        self.forward
            .get(&ItemKey {
                attr,
                value: value.to_owned(),
            })
            .copied()
    }

    /// Returns the key for an item id, if the id is in range.
    pub fn key(&self, id: ItemId) -> Option<&ItemKey> {
        self.reverse.get(id.index())
    }

    /// Renders an item id as `attr=value` (or just the value for basket
    /// items). Unknown ids render as `?<id>`.
    pub fn describe(&self, id: ItemId) -> String {
        match self.key(id) {
            Some(k) if k.attr == Self::BASKET_ATTR => k.value.clone(),
            Some(k) => format!("a{}={}", k.attr.0, k.value),
            None => format!("?{}", id.0),
        }
    }

    /// Iterates over `(ItemId, &ItemKey)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &ItemKey)> {
        self.reverse
            .iter()
            .enumerate()
            .map(|(i, k)| (ItemId(crate::cast::usize_to_u32(i)), k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern(AttrId(0), "yes");
        let b = v.intern(AttrId(0), "yes");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn same_value_different_attr_is_distinct() {
        let mut v = Vocabulary::new();
        let a = v.intern(AttrId(0), "yes");
        let b = v.intern(AttrId(1), "yes");
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        for i in 0..10u16 {
            let id = v.intern(AttrId(i), "x");
            assert_eq!(id.index(), i as usize);
        }
    }

    #[test]
    fn reverse_lookup_matches() {
        let mut v = Vocabulary::new();
        let id = v.intern(AttrId(2), "cap-shape-bell");
        let key = v.key(id).unwrap();
        assert_eq!(key.attr, AttrId(2));
        assert_eq!(key.value, "cap-shape-bell");
        assert_eq!(v.get(AttrId(2), "cap-shape-bell"), Some(id));
        assert_eq!(v.get(AttrId(3), "cap-shape-bell"), None);
    }

    #[test]
    fn basket_items_describe_without_attr() {
        let mut v = Vocabulary::new();
        let bread = v.intern_basket("bread");
        let milk = v.intern(AttrId(4), "milk");
        assert_eq!(v.describe(bread), "bread");
        assert_eq!(v.describe(milk), "a4=milk");
        assert_eq!(v.describe(ItemId(99)), "?99");
    }

    #[test]
    fn iter_visits_in_id_order() {
        let mut v = Vocabulary::new();
        v.intern_basket("a");
        v.intern_basket("b");
        let names: Vec<&str> = v.iter().map(|(_, k)| k.value.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn empty_vocabulary() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.key(ItemId(0)), None);
    }
}
