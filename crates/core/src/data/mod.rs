//! Data model: items, transactions, schemas, tables and transaction sets.
//!
//! The clustering pipeline consumes [`TransactionSet`]s — indexed
//! collections of item sets. Tabular categorical data ([`CategoricalTable`])
//! converts to transactions by treating every present `(attribute, value)`
//! cell as an item, which is how the ROCK paper handles the UCI datasets.

mod dataset;
mod item;
mod schema;
mod table;
mod transaction;
mod vocabulary;

pub use dataset::TransactionSet;
pub use item::{AttrId, ClusterId, ItemId};
pub use schema::{Attribute, Schema};
pub use table::CategoricalTable;
pub use transaction::Transaction;
pub use vocabulary::{ItemKey, Vocabulary};
