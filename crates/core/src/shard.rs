//! Deterministic contiguous sharding of row ranges by estimated work.
//!
//! Every row-sharded kernel (the link kernel, DESIGN.md §13; the
//! inverted-index neighbor join, DESIGN.md §17) partitions its rows into
//! contiguous ranges so each worker writes a disjoint output slice with
//! no synchronization. Balancing by *row count* alone is poor when work
//! per row is skewed (hub rows dominate), so callers supply a per-row
//! work estimate and the boundaries equalize estimated work instead.
//! The partition is a pure function of the weights — never of thread
//! timing — which is one half of the byte-identical-for-any-thread-count
//! guarantee (the other half being that workers only write their own
//! slice).

use crate::cast;

/// Splits `0..weights.len()` into `shards` contiguous ranges balanced by
/// the per-row work estimates. Returns `shards + 1` non-decreasing
/// boundaries starting at 0 and ending at `weights.len()`. Purely a
/// function of the weights, so the partition — and hence each worker's
/// output slice — is deterministic.
pub(crate) fn shard_by_weights(weights: &[u64], shards: usize) -> Vec<usize> {
    let n = weights.len();
    let total: u64 = weights.iter().sum();
    let shards_u64 = cast::usize_to_u64(shards);
    let mut bounds = Vec::with_capacity(shards + 1);
    bounds.push(0);
    let mut acc = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        // Cut after row i once this prefix holds its proportional share.
        // rock-analyze: allow(guard-loop) — bounded: every iteration grows bounds.len() toward shards.
        while bounds.len() < shards && acc * shards_u64 >= total * cast::usize_to_u64(bounds.len())
        {
            bounds.push(i + 1);
        }
    }
    // rock-analyze: allow(guard-loop) — bounded: every iteration grows bounds.len() toward shards.
    while bounds.len() < shards {
        bounds.push(n);
    }
    bounds.push(n);
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariants(bounds: &[usize], n: usize, shards: usize) {
        assert_eq!(bounds.len(), shards + 1);
        assert_eq!(bounds[0], 0);
        assert_eq!(bounds[shards], n);
        for w in bounds.windows(2) {
            assert!(w[0] <= w[1], "non-decreasing boundaries");
        }
        let covered: usize = bounds.windows(2).map(|w| w[1] - w[0]).sum();
        assert_eq!(covered, n);
    }

    #[test]
    fn uniform_weights_split_evenly() {
        let weights = vec![1u64; 100];
        let bounds = shard_by_weights(&weights, 4);
        check_invariants(&bounds, 100, 4);
        for w in bounds.windows(2) {
            assert_eq!(w[1] - w[0], 25);
        }
    }

    #[test]
    fn skewed_weights_move_the_boundaries() {
        // One heavy row up front: the first shard should hold little else.
        let mut weights = vec![1u64; 64];
        weights[0] = 1_000;
        let bounds = shard_by_weights(&weights, 4);
        check_invariants(&bounds, 64, 4);
        assert!(
            bounds[1] < 16,
            "heavy first row must shrink shard 0, got {bounds:?}"
        );
    }

    #[test]
    fn more_shards_than_rows_yields_empty_tail_ranges() {
        let weights = vec![1u64; 3];
        let bounds = shard_by_weights(&weights, 8);
        check_invariants(&bounds, 3, 8);
    }

    #[test]
    fn empty_input_and_zero_weights() {
        check_invariants(&shard_by_weights(&[], 4), 0, 4);
        check_invariants(&shard_by_weights(&[0, 0, 0], 2), 3, 2);
    }

    #[test]
    fn single_shard_covers_everything() {
        let bounds = shard_by_weights(&[3, 1, 4, 1, 5], 1);
        assert_eq!(bounds, vec![0, 5]);
    }
}
