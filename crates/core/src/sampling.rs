//! Random sampling for large datasets (paper §4.2).
//!
//! ROCK clusters a uniform random sample and then labels the rest of the
//! data. The sample must be large enough that every cluster is represented;
//! the paper inherits the Chernoff-bound analysis of CURE: to capture at
//! least `ξ·|u|` points of every cluster `u` of size at least `u_min`, with
//! probability `1 − δ` each, the sample size must satisfy
//!
//! ```text
//! s ≥ ξ·n + (n / u_min)·log(1/δ)
//!       + (n / u_min)·sqrt( log(1/δ)² + 2·ξ·u_min·log(1/δ) )
//! ```

use crate::error::{Result, RockError};
use crate::rng::{Rng, SliceRandom};

/// Minimum sample size that captures at least a fraction `xi` of every
/// cluster of at least `u_min` points, each with probability `1 − delta`
/// (Chernoff bound; see module docs). The result is capped at `n`.
///
/// # Errors
/// * [`RockError::InvalidFraction`] when `xi ∉ (0, 1]`, `delta ∉ (0, 1)`,
///   or `u_min` is 0 or exceeds `n`.
pub fn chernoff_sample_size(n: usize, u_min: usize, xi: f64, delta: f64) -> Result<usize> {
    if !(xi > 0.0 && xi <= 1.0) {
        return Err(RockError::InvalidFraction {
            name: "xi",
            value: xi,
        });
    }
    if !(delta > 0.0 && delta < 1.0) {
        return Err(RockError::InvalidFraction {
            name: "delta",
            value: delta,
        });
    }
    if u_min == 0 || u_min > n {
        return Err(RockError::InvalidFraction {
            name: "u_min",
            value: crate::cast::usize_to_f64(u_min),
        });
    }
    let n_f = crate::cast::usize_to_f64(n);
    let u = crate::cast::usize_to_f64(u_min);
    let l = (1.0 / delta).ln();
    let s = xi * n_f + (n_f / u) * l + (n_f / u) * (l * l + 2.0 * xi * u * l).sqrt();
    Ok(crate::cast::f64_to_usize(s.ceil()).min(n))
}

/// Draws a uniform sample of `size` distinct indices from `0..n`, sorted
/// ascending. Uses partial Fisher–Yates, `O(n)` time and space.
///
/// # Errors
/// * [`RockError::EmptyDataset`] when `n == 0`.
/// * [`RockError::InvalidK`] when `size` is 0 or exceeds `n`.
pub fn sample_indices(n: usize, size: usize, rng: &mut Rng) -> Result<Vec<usize>> {
    if n == 0 {
        return Err(RockError::EmptyDataset);
    }
    if size == 0 || size > n {
        return Err(RockError::InvalidK { k: size, n });
    }
    let mut pool: Vec<usize> = (0..n).collect();
    let (chosen, _) = pool.partial_shuffle(rng, size);
    let mut out = chosen.to_vec();
    out.sort_unstable();
    Ok(out)
}

/// Reservoir sampling over an iterator of unknown length (used when the
/// data is streamed from disk): returns `size` items chosen uniformly, or
/// fewer if the stream is shorter.
pub fn reservoir_sample<T, I: IntoIterator<Item = T>>(
    iter: I,
    size: usize,
    rng: &mut Rng,
) -> Vec<T> {
    if size == 0 {
        return Vec::new();
    }
    let mut reservoir: Vec<T> = Vec::with_capacity(size);
    for (i, item) in iter.into_iter().enumerate() {
        if i < size {
            reservoir.push(item);
        } else {
            let j = rng.gen_range(0..=i);
            if j < size {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

/// Convenience constructor for the crate's seeded RNG.
pub fn seeded_rng(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chernoff_grows_with_confidence() {
        let lo = chernoff_sample_size(10_000, 500, 0.5, 0.1).unwrap();
        let hi = chernoff_sample_size(10_000, 500, 0.5, 0.001).unwrap();
        assert!(hi > lo);
    }

    #[test]
    fn chernoff_grows_for_smaller_clusters() {
        let big = chernoff_sample_size(10_000, 2_000, 0.5, 0.01).unwrap();
        let small = chernoff_sample_size(10_000, 200, 0.5, 0.01).unwrap();
        assert!(small > big);
    }

    #[test]
    fn chernoff_at_least_xi_n_and_capped_at_n() {
        let s = chernoff_sample_size(1_000, 100, 0.25, 0.05).unwrap();
        assert!(s >= 250);
        assert!(s <= 1_000);
        // Tiny clusters force the cap.
        let s = chernoff_sample_size(1_000, 1, 0.5, 0.01).unwrap();
        assert_eq!(s, 1_000);
    }

    #[test]
    fn chernoff_validates_parameters() {
        assert!(chernoff_sample_size(100, 10, 0.0, 0.1).is_err());
        assert!(chernoff_sample_size(100, 10, 1.1, 0.1).is_err());
        assert!(chernoff_sample_size(100, 10, 0.5, 0.0).is_err());
        assert!(chernoff_sample_size(100, 10, 0.5, 1.0).is_err());
        assert!(chernoff_sample_size(100, 0, 0.5, 0.1).is_err());
        assert!(chernoff_sample_size(100, 101, 0.5, 0.1).is_err());
    }

    #[test]
    fn sample_indices_distinct_sorted_in_range() {
        let mut rng = seeded_rng(7);
        let s = sample_indices(100, 30, &mut rng).unwrap();
        assert_eq!(s.len(), 30);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_full_population() {
        let mut rng = seeded_rng(1);
        let s = sample_indices(10, 10, &mut rng).unwrap();
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_validates() {
        let mut rng = seeded_rng(1);
        assert!(sample_indices(0, 1, &mut rng).is_err());
        assert!(sample_indices(10, 0, &mut rng).is_err());
        assert!(sample_indices(10, 11, &mut rng).is_err());
    }

    #[test]
    fn sample_is_seed_deterministic() {
        let a = sample_indices(1000, 50, &mut seeded_rng(42)).unwrap();
        let b = sample_indices(1000, 50, &mut seeded_rng(42)).unwrap();
        let c = sample_indices(1000, 50, &mut seeded_rng(43)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Each of 10 strata should receive close to size/10 picks on average.
        let mut counts = [0usize; 10];
        for seed in 0..200 {
            let s = sample_indices(1000, 100, &mut seeded_rng(seed)).unwrap();
            for i in s {
                counts[i / 100] += 1;
            }
        }
        // 200 runs × 100 picks / 10 strata = 2000 expected per stratum.
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (1800..=2200).contains(&c),
                "stratum {i} count {c} far from 2000"
            );
        }
    }

    #[test]
    fn reservoir_handles_short_and_long_streams() {
        let mut rng = seeded_rng(5);
        let short = reservoir_sample(0..3, 10, &mut rng);
        assert_eq!(short, vec![0, 1, 2]);
        let exact = reservoir_sample(0..10, 10, &mut rng);
        assert_eq!(exact.len(), 10);
        let long = reservoir_sample(0..1000, 10, &mut rng);
        assert_eq!(long.len(), 10);
        let set: std::collections::HashSet<i32> = long.iter().copied().collect();
        assert_eq!(set.len(), 10, "reservoir items must be distinct");
        assert_eq!(reservoir_sample(0..10, 0, &mut rng), Vec::<i32>::new());
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        let mut hits = [0usize; 10];
        for seed in 0..400 {
            let mut rng = seeded_rng(seed);
            for x in reservoir_sample(0..100, 10, &mut rng) {
                hits[(x / 10) as usize] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(
                (300..=500).contains(&h),
                "decile {i} hit count {h} far from 400"
            );
        }
    }
}
