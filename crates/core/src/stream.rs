//! Crash-safe out-of-core labeling: the streaming counterpart of the
//! paper's §4.2 "label the data residing on disk" pass.
//!
//! The batch pipeline materializes every residual point before labeling.
//! At a million rows and up that is exactly where categorical clusterers
//! fall over, so [`StreamLabeler`] labels fixed-size chunks pulled from a
//! [`ChunkSource`] (typically a `rock-cache/v1` dataset cache) through
//! the existing parallel labeling kernel, appending assignment lines to
//! a *partial* output file and writing a `rock-checkpoint/v1` record
//! after every durably labeled chunk. Memory is bounded by one chunk
//! buffer, which streams into the `stream_buffers` gauge so a
//! `--mem-budget` ceiling trips honestly mid-stream.
//!
//! **Crash safety.** The durability order per chunk is: append body
//! lines → sync → atomically replace the checkpoint. A crash between the
//! two leaves a partial file *longer* than the checkpoint records, which
//! resume truncates back to the recorded length and verifies against the
//! recorded running FNV state — so a process killed at *any* point
//! resumes to assignments byte-identical to an uninterrupted run. A
//! corrupt or inconsistent checkpoint fails closed
//! ([`RockError::CheckpointInvalid`], exit code 4); it never silently
//! restarts.
//!
//! **Degradation.** The guard is polled before each chunk read and again
//! after the chunk buffer is gauged. A trip (cancellation, deadline,
//! memory ceiling, injection) finalizes the rows labeled so far into a
//! *valid* `rock-assignments v1` file and returns
//! [`StreamOutcome::Degraded`] with the machine-readable
//! [`Degradation`]; the checkpoint stays on disk so a later run can
//! still finish the job.
//!
//! **Fault tolerance.** Every disk operation runs under a
//! [`RetryPolicy`]: transient [`RockError::Io`] failures (or injected
//! ones — see [`StreamLabeler::write_probe`]) retry on a deterministic
//! backoff schedule and only surface after exhaustion. A failed append
//! is rolled back by truncating to the pre-chunk length before the next
//! attempt, so retries never duplicate lines.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::cast;
use crate::checkpoint::{tmp_path, StreamCheckpoint};
use crate::data::Transaction;
use crate::error::{Result, RockError};
use crate::guard::{Degradation, Guard, Trip};
use crate::hash::{fnv1a64, Fnv1a64};
use crate::retry::{RetryOutcome, RetryPolicy};
use crate::snapshot::ModelSnapshot;
use crate::telemetry::trace::Payload;
use crate::telemetry::{MemoryGauges, Observer, Phase, PipelineCounters};

/// A chunked, re-readable supply of transactions — the disk side of the
/// out-of-core pipeline. Implemented by the `rock-cache/v1` dataset
/// cache in `rock-datasets` and by [`MemoryChunkSource`] for tests.
pub trait ChunkSource {
    /// Number of chunks. Every chunk except possibly the last holds the
    /// same number of rows.
    fn total_chunks(&self) -> u64;
    /// Total rows across all chunks.
    fn total_rows(&self) -> u64;
    /// Content identity of the source. A checkpoint records it and
    /// resume refuses to continue against a source with a different
    /// identity.
    fn identity(&self) -> u64;
    /// Reads chunk `index` (0-based).
    ///
    /// # Errors
    /// [`RockError::Io`] for transient read failures (retried by the
    /// labeler), [`RockError::CacheInvalid`] for corruption (not
    /// retried).
    fn read_chunk(&self, index: u64) -> Result<Vec<Transaction>>;
}

/// An in-memory [`ChunkSource`] over a vector of transactions: the chaos
/// suite's stand-in for the on-disk cache, and a convenience for callers
/// that already hold the data but want the checkpointed output path.
#[derive(Debug, Clone)]
pub struct MemoryChunkSource {
    rows: Vec<Transaction>,
    chunk_rows: usize,
    identity: u64,
}

impl MemoryChunkSource {
    /// Wraps `rows`, splitting them into chunks of `chunk_rows` (the
    /// last chunk may be short). `chunk_rows` is clamped to at least 1.
    pub fn new(rows: Vec<Transaction>, chunk_rows: usize) -> Self {
        let mut h = Fnv1a64::new();
        for t in &rows {
            for &item in t.items() {
                h.update(&item.to_le_bytes());
            }
            h.update(b";");
        }
        MemoryChunkSource {
            rows,
            chunk_rows: chunk_rows.max(1),
            identity: h.finish(),
        }
    }
}

impl ChunkSource for MemoryChunkSource {
    fn total_chunks(&self) -> u64 {
        cast::usize_to_u64(self.rows.len().div_ceil(self.chunk_rows))
    }

    fn total_rows(&self) -> u64 {
        cast::usize_to_u64(self.rows.len())
    }

    fn identity(&self) -> u64 {
        self.identity
    }

    fn read_chunk(&self, index: u64) -> Result<Vec<Transaction>> {
        let start = cast::u64_to_usize(index) * self.chunk_rows;
        if start >= self.rows.len() {
            return Err(RockError::CacheInvalid {
                message: format!("chunk {index} out of range"),
            });
        }
        let end = (start + self.chunk_rows).min(self.rows.len());
        Ok(self.rows[start..end].to_vec())
    }
}

/// Final tallies of a streaming run (also the final header's fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Rows labeled and durably written.
    pub rows: u64,
    /// Rows assigned to some cluster.
    pub labeled: u64,
    /// Rows marked outliers.
    pub outliers: u64,
    /// One past the highest cluster id assigned (`0` when none).
    pub k: u64,
    /// Chunks durably labeled across all runs of this job.
    pub chunks_done: u64,
    /// `true` when this run continued from an existing checkpoint.
    pub resumed: bool,
}

/// How a streaming labeling run concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamOutcome {
    /// Every chunk was labeled; the final output is in place and the
    /// checkpoint and partial files are gone.
    Complete(StreamStats),
    /// The guard tripped mid-stream. The output file holds a *valid*
    /// labeling of the rows processed so far; the checkpoint and partial
    /// files remain so a later run can finish.
    Degraded {
        /// Tallies at the trip point.
        stats: StreamStats,
        /// The machine-readable trip report.
        degradation: Degradation,
    },
    /// The run stopped deliberately after
    /// [`StreamLabeler::stop_after_chunks`] chunks — the chaos suite's
    /// deterministic crash surrogate. Checkpoint and partial files
    /// remain; no final output was written.
    Paused(StreamStats),
}

/// Pre-write hook for fault injection: called with the destination path
/// before every disk write the labeler performs. Returning an error
/// simulates the write failing; the retry layer handles it exactly like
/// a real fault.
pub type WriteProbe = Arc<dyn Fn(&Path) -> Result<()> + Send + Sync>;

/// The streaming labeler. Construct with [`StreamLabeler::new`], tune
/// with the builder methods, then call [`run`](StreamLabeler::run).
pub struct StreamLabeler<'a> {
    snapshot: &'a ModelSnapshot,
    threads: usize,
    retry: RetryPolicy,
    stop_after_chunks: Option<u64>,
    write_probe: Option<WriteProbe>,
}

impl std::fmt::Debug for StreamLabeler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamLabeler")
            .field("threads", &self.threads)
            .field("retry", &self.retry)
            .field("stop_after_chunks", &self.stop_after_chunks)
            .field("write_probe", &self.write_probe.is_some())
            .finish()
    }
}

impl<'a> StreamLabeler<'a> {
    /// A labeler for `snapshot` with default retry policy, one labeling
    /// thread per CPU, and no stop point.
    pub fn new(snapshot: &'a ModelSnapshot) -> Self {
        StreamLabeler {
            snapshot,
            threads: 0,
            retry: RetryPolicy::default(),
            stop_after_chunks: None,
            write_probe: None,
        }
    }

    /// Labeling threads per chunk (`0` = one per CPU, capped at 16).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The retry policy wrapping every disk read and write.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Stop after durably labeling `chunks` chunks *in this run* and
    /// return [`StreamOutcome::Paused`]. This is the deterministic crash
    /// surrogate (the files on disk are exactly what a `kill -9` right
    /// after the checkpoint rename would leave), mirroring
    /// [`Guard::inject_trip_at`] for budget trips.
    pub fn stop_after_chunks(mut self, chunks: u64) -> Self {
        self.stop_after_chunks = Some(chunks);
        self
    }

    /// Installs a fault-injection probe consulted before every disk
    /// write (partial appends, checkpoint saves, the final rename).
    pub fn write_probe(mut self, probe: WriteProbe) -> Self {
        self.write_probe = Some(probe);
        self
    }

    fn probe(&self, path: &Path) -> Result<()> {
        match &self.write_probe {
            Some(p) => p(path),
            None => Ok(()),
        }
    }

    /// Labels every chunk of `source`, writing the final
    /// `rock-assignments v1` file to `output` and maintaining the resume
    /// record at `checkpoint_path`. See the module docs for the
    /// crash-safety, degradation and retry contracts.
    ///
    /// # Errors
    /// [`RockError::Io`] after retry exhaustion,
    /// [`RockError::CheckpointInvalid`] when an existing checkpoint
    /// cannot be trusted (fails closed), [`RockError::CacheInvalid`]
    /// for source corruption. On error the checkpoint (if any) is left
    /// in place, so a rerun resumes rather than restarts.
    pub fn run(
        &self,
        source: &dyn ChunkSource,
        output: &Path,
        checkpoint_path: &Path,
        guard: &Guard,
        observer: &Observer,
    ) -> Result<StreamOutcome> {
        let cache_id = source.identity();
        let model_id = self.snapshot.fingerprint();
        let total_chunks = source.total_chunks();
        let partial = partial_path(output);

        // --- Resume or fresh start -----------------------------------
        let (mut cp, resumed) = if checkpoint_path.exists() {
            let cp = StreamCheckpoint::load(checkpoint_path)?;
            self.validate_resume(&cp, cache_id, model_id, total_chunks, &partial)?;
            PipelineCounters::add(&observer.counters().stream_resumes, 1);
            (cp, true)
        } else {
            let fresh = StreamCheckpoint {
                cache_id,
                model_id,
                chunks_done: 0,
                chunks_total: total_chunks,
                rows_done: 0,
                labeled: 0,
                outliers: 0,
                kmax: 0,
                partial_bytes: 0,
                partial_fnv: Fnv1a64::new().finish(),
            };
            // Any orphaned partial (crash before the first checkpoint)
            // is garbage: start it empty. Retried like every other disk
            // write — a transient fault on the very first byte must not
            // kill a fresh run.
            match self.retry.run(guard, observer, Phase::Labeling, || {
                self.probe(&partial)?;
                write_file(&partial, b"")
            })? {
                RetryOutcome::Done(()) => {}
                RetryOutcome::Tripped(trip) => {
                    // Tripped before anything durable existed: make the
                    // empty partial so the degraded output is still a
                    // valid (zero-row) labeling.
                    write_file(&partial, b"")?;
                    return self.degrade(&fresh, false, &partial, output, guard, trip);
                }
            }
            (fresh, false)
        };

        let mut hasher = Fnv1a64::from_state(cp.partial_fnv);
        let mut chunks_this_run = 0u64;

        // --- Chunk loop ----------------------------------------------
        // (A `for` over a fixed range: guard trips are checked at the
        // top of each iteration, so the loop is bounded both ways.)
        for index in cp.chunks_done..total_chunks {
            if let Some(trip) = guard.checkpoint(Phase::Labeling, observer) {
                return self.degrade(&cp, resumed, &partial, output, guard, trip);
            }
            let span = observer.tracer().begin();

            // Read the chunk (retried on transient faults).
            let chunk = match self.retry.run(guard, observer, Phase::Labeling, || {
                source.read_chunk(index)
            })? {
                RetryOutcome::Done(c) => c,
                RetryOutcome::Tripped(trip) => {
                    return self.degrade(&cp, resumed, &partial, output, guard, trip)
                }
            };

            // Gauge the chunk buffer, then re-check the guard so a
            // memory ceiling trips honestly mid-stream.
            let chunk_bytes = estimate_chunk_bytes(&chunk);
            MemoryGauges::observe(&observer.memory().stream_buffers, chunk_bytes);
            if let Some(trip) = guard.checkpoint(Phase::Labeling, observer) {
                return self.degrade(&cp, resumed, &partial, output, guard, trip);
            }

            // Label through the parallel kernel (deterministic order).
            let refs: Vec<&Transaction> = chunk.iter().collect();
            let labels = self.snapshot.label_chunk(&refs, self.threads);

            // Render this chunk's assignment lines.
            let mut text = String::with_capacity(labels.len() * 10);
            let mut labeled = 0u64;
            let mut outliers = 0u64;
            let mut kmax = cp.kmax;
            for (j, l) in labels.iter().enumerate() {
                let row = cp.rows_done + cast::usize_to_u64(j);
                match l {
                    Some(c) => {
                        let c = cast::usize_to_u64(*c);
                        text.push_str(&format!("{row} {c}\n"));
                        labeled += 1;
                        kmax = kmax.max(c + 1);
                    }
                    None => {
                        text.push_str(&format!("{row} -\n"));
                        outliers += 1;
                    }
                }
            }

            // Durably append (rolled back and retried on failure), then
            // atomically advance the checkpoint. A crash between the two
            // leaves a long partial that resume truncates.
            let pre_len = cp.partial_bytes;
            match self.retry.run(guard, observer, Phase::Labeling, || {
                self.probe(&partial)?;
                append_at(&partial, pre_len, text.as_bytes())
            })? {
                RetryOutcome::Done(()) => {}
                RetryOutcome::Tripped(trip) => {
                    return self.degrade(&cp, resumed, &partial, output, guard, trip)
                }
            }
            hasher.update(text.as_bytes());
            let next = StreamCheckpoint {
                chunks_done: index + 1,
                rows_done: cp.rows_done + cast::usize_to_u64(labels.len()),
                labeled: cp.labeled + labeled,
                outliers: cp.outliers + outliers,
                kmax,
                partial_bytes: pre_len + cast::usize_to_u64(text.len()),
                partial_fnv: hasher.finish(),
                ..cp
            };
            match self.retry.run(guard, observer, Phase::Labeling, || {
                self.probe(checkpoint_path)?;
                next.save(checkpoint_path)
            })? {
                RetryOutcome::Done(()) => {}
                RetryOutcome::Tripped(trip) => {
                    // The append is durable but the checkpoint is not:
                    // degrade from the *previous* checkpoint, exactly as
                    // a resume would.
                    return self.degrade(&cp, resumed, &partial, output, guard, trip);
                }
            }
            cp = next;
            chunks_this_run += 1;

            let counters = observer.counters();
            PipelineCounters::add(&counters.chunks_labeled, 1);
            PipelineCounters::add(&counters.checkpoint_writes, 1);
            PipelineCounters::add(
                &counters.labeling_evaluations,
                cast::usize_to_u64(labels.len())
                    * cast::usize_to_u64(self.snapshot.representatives().total()),
            );
            PipelineCounters::add(&counters.points_labeled, labeled);
            if let Some(s) = span {
                observer.tracer().end(
                    s,
                    "stream.chunk",
                    Some(Phase::Labeling),
                    0,
                    Payload::new()
                        .count("chunk", index)
                        .count("rows", cast::usize_to_u64(labels.len()))
                        .count("labeled", labeled)
                        .count("bytes", chunk_bytes),
                );
            }
            observer.progress(Phase::Labeling, cp.rows_done, source.total_rows());

            if self.stop_after_chunks == Some(chunks_this_run) && cp.chunks_done < total_chunks {
                return Ok(StreamOutcome::Paused(stats_of(&cp, resumed)));
            }
        }

        // --- Finalize -------------------------------------------------
        self.finalize(&cp, &partial, output, guard, observer)?;
        // Durability order: drop the checkpoint first. A crash in
        // between leaves an orphaned partial with no checkpoint, which a
        // fresh start simply truncates — never a checkpoint pointing at
        // missing bytes.
        remove_file(checkpoint_path)?;
        remove_file(&partial)?;
        Ok(StreamOutcome::Complete(stats_of(&cp, resumed)))
    }

    /// Validates a loaded checkpoint against the live inputs and repairs
    /// the partial file (truncating a torn tail). Fails closed.
    fn validate_resume(
        &self,
        cp: &StreamCheckpoint,
        cache_id: u64,
        model_id: u64,
        total_chunks: u64,
        partial: &Path,
    ) -> Result<()> {
        let bad = |message: String| RockError::CheckpointInvalid { message };
        if cp.cache_id != cache_id {
            return Err(bad(format!(
                "checkpoint was written for cache {:016x}, not {:016x}",
                cp.cache_id, cache_id
            )));
        }
        if cp.model_id != model_id {
            return Err(bad(format!(
                "checkpoint was written for model {:016x}, not {:016x}",
                cp.model_id, model_id
            )));
        }
        if cp.chunks_total != total_chunks {
            return Err(bad(format!(
                "checkpoint expects {} chunks, source has {total_chunks}",
                cp.chunks_total
            )));
        }
        let io = |e: std::io::Error| RockError::Io {
            path: partial.display().to_string(),
            message: e.to_string(),
        };
        let len = match std::fs::metadata(partial) {
            Ok(m) => m.len(),
            Err(_) if cp.partial_bytes == 0 => {
                // Nothing durable yet; recreate the empty partial.
                write_file(partial, b"")?;
                0
            }
            Err(e) => return Err(io(e)),
        };
        if len < cp.partial_bytes {
            return Err(bad(format!(
                "partial output shorter than recorded: {len} bytes on disk, checkpoint says {}",
                cp.partial_bytes
            )));
        }
        if len > cp.partial_bytes {
            // Torn tail from a crash after append, before checkpoint.
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(partial)
                .map_err(io)?;
            f.set_len(cp.partial_bytes).map_err(io)?;
            f.sync_all().map_err(io)?;
        }
        let mut body = Vec::new();
        std::fs::File::open(partial)
            .map_err(io)?
            .take(cp.partial_bytes)
            .read_to_end(&mut body)
            .map_err(io)?;
        let actual = fnv1a64(&body);
        if actual != cp.partial_fnv {
            return Err(bad(format!(
                "partial output hash {actual:016x} does not match recorded {:016x}",
                cp.partial_fnv
            )));
        }
        Ok(())
    }

    /// Writes the final `rock-assignments v1` file: header, then the
    /// partial body streamed across — byte-identical to
    /// `write_assignments` over the same labels. Atomic via temp +
    /// rename; retried on transient faults.
    fn finalize(
        &self,
        cp: &StreamCheckpoint,
        partial: &Path,
        output: &Path,
        guard: &Guard,
        observer: &Observer,
    ) -> Result<()> {
        let io = |e: std::io::Error| RockError::Io {
            path: output.display().to_string(),
            message: e.to_string(),
        };
        let tmp = tmp_path(output);
        match self.retry.run(guard, observer, Phase::Labeling, || {
            self.probe(output)?;
            let mut out = std::io::BufWriter::new(std::fs::File::create(&tmp).map_err(io)?);
            write!(
                out,
                "rock-assignments v1\nn={} k={} outliers={}\n",
                cp.rows_done, cp.kmax, cp.outliers
            )
            .map_err(io)?;
            let body = std::fs::File::open(partial).map_err(io)?;
            std::io::copy(&mut body.take(cp.partial_bytes), &mut out).map_err(io)?;
            out.into_inner()
                .map_err(|e| io(e.into_error()))?
                .sync_all()
                .map_err(io)?;
            std::fs::rename(&tmp, output).map_err(io)
        })? {
            RetryOutcome::Done(()) => Ok(()),
            // Finalize runs after the guard already allowed the last
            // chunk (or on the degrade path, after a trip was recorded):
            // a trip here still leaves the durable partial+checkpoint,
            // so surface it as a budget error rather than lose the
            // distinction.
            RetryOutcome::Tripped(trip) => Err(RockError::BudgetExhausted {
                reason: trip.reason.name().to_owned(),
                phase: trip.phase.name().to_owned(),
            }),
        }
    }

    /// The degraded exit: finalize the durable prefix into a valid
    /// output file, keep checkpoint + partial for a later resume, and
    /// report the trip.
    fn degrade(
        &self,
        cp: &StreamCheckpoint,
        resumed: bool,
        partial: &Path,
        output: &Path,
        guard: &Guard,
        trip: Trip,
    ) -> Result<StreamOutcome> {
        // The degrade path must not consult the tripped guard again, so
        // finalize under a fresh unlimited guard (pure disk work).
        let free = Guard::unlimited();
        self.finalize(cp, partial, output, &free, &Observer::new())?;
        Ok(StreamOutcome::Degraded {
            stats: stats_of(cp, resumed),
            degradation: guard.degradation(trip),
        })
    }
}

fn stats_of(cp: &StreamCheckpoint, resumed: bool) -> StreamStats {
    StreamStats {
        rows: cp.rows_done,
        labeled: cp.labeled,
        outliers: cp.outliers,
        k: cp.kmax,
        chunks_done: cp.chunks_done,
        resumed,
    }
}

/// Sibling path holding the headerless assignment body while the stream
/// is in flight (`<output>.partial`).
pub fn partial_path(output: &Path) -> PathBuf {
    let mut name = output.file_name().unwrap_or_default().to_os_string();
    name.push(".partial");
    output.with_file_name(name)
}

/// Estimated heap bytes of a chunk buffer: per row, the `Vec<u32>` items
/// plus container overhead. Feeds the `stream_buffers` memory gauge.
fn estimate_chunk_bytes(chunk: &[Transaction]) -> u64 {
    let per_row_overhead = cast::usize_to_u64(std::mem::size_of::<Transaction>());
    chunk
        .iter()
        .map(|t| cast::usize_to_u64(t.len()) * 4 + per_row_overhead)
        .sum()
}

fn write_file(path: &Path, bytes: &[u8]) -> Result<()> {
    std::fs::write(path, bytes).map_err(|e| RockError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

fn remove_file(path: &Path) -> Result<()> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(RockError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        }),
    }
}

/// Truncates `path` to `at` bytes and writes `bytes` there, syncing to
/// disk. Re-running after a torn attempt is safe: the truncate discards
/// whatever the failed attempt left behind.
fn append_at(path: &Path, at: u64, bytes: &[u8]) -> Result<()> {
    let io = |e: std::io::Error| RockError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    };
    let mut f = std::fs::OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)
        .map_err(io)?;
    f.set_len(at).map_err(io)?;
    f.seek(SeekFrom::Start(at)).map_err(io)?;
    f.write_all(bytes).map_err(io)?;
    f.sync_data().map_err(io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Vocabulary;
    use crate::goodness::{LinkExponent, MarketBasket};
    use crate::labeling::Representatives;
    use crate::snapshot::{OutlierPolicy, SimilarityKind};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn test_snapshot() -> ModelSnapshot {
        let mut vocab = Vocabulary::new();
        for name in ["a0", "a1", "a2", "a3", "b0", "b1", "b2", "b3", "noise"] {
            vocab.intern_basket(name);
        }
        let sets = vec![
            vec![Transaction::new([0, 1, 2]), Transaction::new([0, 1, 3])],
            vec![Transaction::new([4, 5, 6]), Transaction::new([4, 5, 7])],
        ];
        ModelSnapshot::new(
            0.4,
            MarketBasket.f(0.4),
            SimilarityKind::Jaccard,
            OutlierPolicy::Mark,
            9,
            Some(vocab),
            Representatives::from_sets(sets),
        )
        .unwrap()
    }

    fn test_rows(n: u32) -> Vec<Transaction> {
        (0..n)
            .map(|i| match i % 3 {
                0 => Transaction::new([0, 1, 2]),
                1 => Transaction::new([4, 5, 6]),
                _ => Transaction::new([8]),
            })
            .collect()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rock-stream-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch_reference(snapshot: &ModelSnapshot, rows: &[Transaction]) -> Vec<u8> {
        let refs: Vec<&Transaction> = rows.iter().collect();
        let labels = snapshot.label_chunk(&refs, 1);
        let assignments: Vec<Option<crate::data::ClusterId>> = labels
            .iter()
            .map(|l| l.map(|c| crate::data::ClusterId(cast::usize_to_u32(c))))
            .collect();
        let mut buf = Vec::new();
        crate::export::write_assignments(&mut buf, &assignments).unwrap();
        buf
    }

    #[test]
    fn streaming_matches_batch_write_assignments() {
        let dir = temp_dir("match-batch");
        let snap = test_snapshot();
        let rows = test_rows(100);
        let source = MemoryChunkSource::new(rows.clone(), 7);
        let out = dir.join("a.rockassign");
        let ckpt = dir.join("a.rockckpt");
        let obs = Observer::new();
        let outcome = StreamLabeler::new(&snap)
            .threads(1)
            .run(&source, &out, &ckpt, &Guard::unlimited(), &obs)
            .unwrap();
        let StreamOutcome::Complete(stats) = outcome else {
            panic!("expected completion, got {outcome:?}");
        };
        assert_eq!(stats.rows, 100);
        assert_eq!(stats.chunks_done, 15);
        assert!(!stats.resumed);
        assert_eq!(std::fs::read(&out).unwrap(), batch_reference(&snap, &rows));
        // Clean completion removes the working files.
        assert!(!ckpt.exists());
        assert!(!partial_path(&out).exists());
        assert_eq!(obs.counters().snapshot().chunks_labeled, 15);
        assert_eq!(obs.counters().snapshot().checkpoint_writes, 15);
        assert!(obs.memory().snapshot().stream_buffers > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pause_and_resume_is_byte_identical() {
        let dir = temp_dir("resume");
        let snap = test_snapshot();
        let rows = test_rows(90);
        let source = MemoryChunkSource::new(rows.clone(), 10);
        let reference = batch_reference(&snap, &rows);
        // Kill after every possible chunk boundary, resume to the end.
        for kill_after in 1..9u64 {
            let out = dir.join(format!("k{kill_after}.rockassign"));
            let ckpt = dir.join(format!("k{kill_after}.rockckpt"));
            let obs = Observer::new();
            let paused = StreamLabeler::new(&snap)
                .stop_after_chunks(kill_after)
                .run(&source, &out, &ckpt, &Guard::unlimited(), &obs)
                .unwrap();
            let StreamOutcome::Paused(stats) = paused else {
                panic!("expected pause, got {paused:?}");
            };
            assert_eq!(stats.chunks_done, kill_after);
            assert!(ckpt.exists());
            assert!(!out.exists());
            let resumed = StreamLabeler::new(&snap)
                .run(&source, &out, &ckpt, &Guard::unlimited(), &obs)
                .unwrap();
            let StreamOutcome::Complete(stats) = resumed else {
                panic!("expected completion, got {resumed:?}");
            };
            assert!(stats.resumed);
            assert_eq!(std::fs::read(&out).unwrap(), reference, "kill={kill_after}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_partial_tail_is_truncated_on_resume() {
        let dir = temp_dir("torn");
        let snap = test_snapshot();
        let rows = test_rows(60);
        let source = MemoryChunkSource::new(rows.clone(), 20);
        let out = dir.join("t.rockassign");
        let ckpt = dir.join("t.rockckpt");
        let obs = Observer::new();
        StreamLabeler::new(&snap)
            .stop_after_chunks(1)
            .run(&source, &out, &ckpt, &Guard::unlimited(), &obs)
            .unwrap();
        // Simulate a crash mid-append: garbage past the durable length.
        let partial = partial_path(&out);
        let mut bytes = std::fs::read(&partial).unwrap();
        bytes.extend_from_slice(b"41 torn-garbage");
        std::fs::write(&partial, &bytes).unwrap();
        let outcome = StreamLabeler::new(&snap)
            .run(&source, &out, &ckpt, &Guard::unlimited(), &obs)
            .unwrap();
        assert!(matches!(outcome, StreamOutcome::Complete(_)));
        assert_eq!(std::fs::read(&out).unwrap(), batch_reference(&snap, &rows));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_partial_body_fails_closed() {
        let dir = temp_dir("corrupt-partial");
        let snap = test_snapshot();
        let source = MemoryChunkSource::new(test_rows(60), 20);
        let out = dir.join("c.rockassign");
        let ckpt = dir.join("c.rockckpt");
        let obs = Observer::new();
        StreamLabeler::new(&snap)
            .stop_after_chunks(1)
            .run(&source, &out, &ckpt, &Guard::unlimited(), &obs)
            .unwrap();
        // Flip a byte *inside* the durable prefix.
        let partial = partial_path(&out);
        let mut bytes = std::fs::read(&partial).unwrap();
        bytes[0] = b'9';
        std::fs::write(&partial, &bytes).unwrap();
        let err = StreamLabeler::new(&snap)
            .run(&source, &out, &ckpt, &Guard::unlimited(), &obs)
            .unwrap_err();
        assert!(matches!(err, RockError::CheckpointInvalid { .. }));
        assert_eq!(err.exit_code(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_against_wrong_inputs_fails_closed() {
        let dir = temp_dir("wrong-inputs");
        let snap = test_snapshot();
        let source = MemoryChunkSource::new(test_rows(60), 20);
        let out = dir.join("w.rockassign");
        let ckpt = dir.join("w.rockckpt");
        let obs = Observer::new();
        StreamLabeler::new(&snap)
            .stop_after_chunks(1)
            .run(&source, &out, &ckpt, &Guard::unlimited(), &obs)
            .unwrap();
        // A different dataset: identity mismatch.
        let other = MemoryChunkSource::new(test_rows(61), 20);
        let err = StreamLabeler::new(&snap)
            .run(&other, &out, &ckpt, &Guard::unlimited(), &obs)
            .unwrap_err();
        assert!(matches!(err, RockError::CheckpointInvalid { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn guard_trip_degrades_with_valid_partial_output() {
        let dir = temp_dir("degrade");
        let snap = test_snapshot();
        let rows = test_rows(90);
        let source = MemoryChunkSource::new(rows, 10);
        let out = dir.join("d.rockassign");
        let ckpt = dir.join("d.rockckpt");
        let obs = Observer::new();
        // A tiny memory ceiling: the first chunk's buffer gauge trips it.
        let guard = Guard::new(crate::guard::RunBudget::unlimited().memory(8));
        let outcome = StreamLabeler::new(&snap)
            .run(&source, &out, &ckpt, &guard, &obs)
            .unwrap();
        let StreamOutcome::Degraded { stats, degradation } = outcome else {
            panic!("expected degradation, got {outcome:?}");
        };
        assert_eq!(stats.rows, 0);
        assert_eq!(degradation.phase, Phase::Labeling);
        assert!(matches!(
            degradation.reason,
            crate::guard::TripReason::MemoryBudget { .. }
        ));
        // The output is a valid (empty) labeling.
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.starts_with("rock-assignments v1\nn=0 "));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_faults_are_retried_to_completion() {
        let dir = temp_dir("write-faults");
        let snap = test_snapshot();
        let rows = test_rows(50);
        let source = MemoryChunkSource::new(rows.clone(), 10);
        let out = dir.join("f.rockassign");
        let ckpt = dir.join("f.rockckpt");
        let obs = Observer::new();
        let calls = Arc::new(AtomicU64::new(0));
        let probe_calls = Arc::clone(&calls);
        let probe: WriteProbe = Arc::new(move |path: &Path| {
            // Every third write attempt fails.
            if probe_calls.fetch_add(1, Ordering::Relaxed) % 3 == 2 {
                Err(RockError::Io {
                    path: path.display().to_string(),
                    message: "injected write fault".to_owned(),
                })
            } else {
                Ok(())
            }
        });
        let outcome = StreamLabeler::new(&snap)
            .retry(RetryPolicy {
                max_attempts: 4,
                base_delay_ms: 0,
                max_delay_ms: 0,
            })
            .write_probe(probe)
            .run(&source, &out, &ckpt, &Guard::unlimited(), &obs)
            .unwrap();
        assert!(matches!(outcome, StreamOutcome::Complete(_)));
        assert_eq!(std::fs::read(&out).unwrap(), batch_reference(&snap, &rows));
        assert!(obs.counters().snapshot().io_retries > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exhausted_write_faults_surface_io_and_keep_the_checkpoint() {
        let dir = temp_dir("write-exhaust");
        let snap = test_snapshot();
        let rows = test_rows(50);
        let source = MemoryChunkSource::new(rows.clone(), 10);
        let out = dir.join("x.rockassign");
        let ckpt = dir.join("x.rockckpt");
        let obs = Observer::new();
        // Two chunks succeed, then every write fails.
        StreamLabeler::new(&snap)
            .stop_after_chunks(2)
            .run(&source, &out, &ckpt, &Guard::unlimited(), &obs)
            .unwrap();
        let probe: WriteProbe = Arc::new(|path: &Path| {
            Err(RockError::Io {
                path: path.display().to_string(),
                message: "disk on fire".to_owned(),
            })
        });
        let err = StreamLabeler::new(&snap)
            .retry(RetryPolicy {
                max_attempts: 2,
                base_delay_ms: 0,
                max_delay_ms: 0,
            })
            .write_probe(probe)
            .run(&source, &out, &ckpt, &Guard::unlimited(), &obs)
            .unwrap_err();
        assert!(matches!(err, RockError::Io { .. }));
        assert_eq!(err.exit_code(), 3);
        // The checkpoint survives the failure: a healthy rerun finishes.
        assert!(ckpt.exists());
        let outcome = StreamLabeler::new(&snap)
            .run(&source, &out, &ckpt, &Guard::unlimited(), &obs)
            .unwrap();
        assert!(matches!(outcome, StreamOutcome::Complete(_)));
        assert_eq!(std::fs::read(&out).unwrap(), batch_reference(&snap, &rows));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_source_chunks_cover_all_rows() {
        let source = MemoryChunkSource::new(test_rows(25), 10);
        assert_eq!(source.total_chunks(), 3);
        assert_eq!(source.total_rows(), 25);
        assert_eq!(source.read_chunk(0).unwrap().len(), 10);
        assert_eq!(source.read_chunk(2).unwrap().len(), 5);
        assert!(source.read_chunk(3).is_err());
        // Identity is content-sensitive.
        let other = MemoryChunkSource::new(test_rows(26), 10);
        assert_ne!(source.identity(), other.identity());
    }
}
