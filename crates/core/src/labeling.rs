//! Labeling data on disk (paper §4.2).
//!
//! After clustering a sample, the remaining points are assigned in one
//! pass. From each cluster `i` ROCK selects a set `L_i` of representative
//! points; an outside point `p` joins the cluster maximizing
//!
//! ```text
//! N_i / (|L_i| + 1)^{f(θ)}
//! ```
//!
//! where `N_i` is the number of `p`'s θ-neighbors inside `L_i`. The
//! denominator is the expected number of neighbors a genuine member would
//! have among `L_i ∪ {p}`, so large representative sets do not
//! automatically attract every point. Points with no neighbors in any
//! `L_i` are labeled outliers.

use crate::cast;
use crate::data::{Transaction, TransactionSet};
use crate::error::{Result, RockError};
use crate::goodness::LinkExponent;
use crate::rng::{Rng, SliceRandom};
use crate::similarity::Similarity;
use crate::telemetry::trace::Payload;
use crate::telemetry::{Observer, Phase, PipelineCounters};

/// Configuration for the labeling pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelingConfig {
    /// Fraction of each cluster drawn as representatives (`L_i`), in
    /// `(0, 1]`.
    pub representative_fraction: f64,
    /// Upper bound on `|L_i|` per cluster (keeps the pass `O(n·Σ|L_i|)`
    /// affordable for huge clusters). `0` means unbounded.
    pub max_representatives: usize,
}

impl Default for LabelingConfig {
    fn default() -> Self {
        LabelingConfig {
            representative_fraction: 0.25,
            max_representatives: 256,
        }
    }
}

impl LabelingConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if !(self.representative_fraction > 0.0 && self.representative_fraction <= 1.0) {
            return Err(RockError::InvalidFraction {
                name: "representative_fraction",
                value: self.representative_fraction,
            });
        }
        Ok(())
    }
}

/// Representative points (`L_i`) drawn from each cluster.
#[derive(Debug, Clone)]
pub struct Representatives {
    /// Per cluster: the representative transactions.
    sets: Vec<Vec<Transaction>>,
}

impl Representatives {
    /// Draws representatives from `clusters` (member index lists into
    /// `sample`) according to `config`.
    ///
    /// # Errors
    /// Propagates config validation; returns [`RockError::EmptyDataset`]
    /// when `clusters` is empty.
    pub fn draw(
        sample: &TransactionSet,
        clusters: &[Vec<u32>],
        config: &LabelingConfig,
        rng: &mut Rng,
    ) -> Result<Self> {
        config.validate()?;
        if clusters.is_empty() {
            return Err(RockError::EmptyDataset);
        }
        let sets = clusters
            .iter()
            .map(|members| {
                let want = cast::f64_to_usize(
                    (cast::usize_to_f64(members.len()) * config.representative_fraction).ceil(),
                )
                .max(1);
                let want = if config.max_representatives > 0 {
                    want.min(config.max_representatives)
                } else {
                    want
                };
                let mut ids: Vec<u32> = members.clone();
                ids.shuffle(rng);
                ids.truncate(want);
                ids.iter()
                    // Member indices come from the clustering over this
                    // sample, so the lookup cannot miss; skip defensively
                    // instead of panicking.
                    .filter_map(|&i| sample.transaction(cast::u32_to_usize(i)).cloned())
                    .collect()
            })
            .collect();
        Ok(Representatives { sets })
    }

    /// Reconstructs representative sets from explicit per-cluster
    /// transactions (the model-snapshot load path; `draw` is the fitting
    /// path).
    pub fn from_sets(sets: Vec<Vec<Transaction>>) -> Self {
        Representatives { sets }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.sets.len()
    }

    /// Representatives of cluster `i`.
    pub fn set(&self, i: usize) -> &[Transaction] {
        &self.sets[i]
    }

    /// Total number of representatives across clusters.
    pub fn total(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

/// Assigns one point: returns `Some(cluster)` with the best labeling score,
/// or `None` when the point has no neighbor in any representative set.
pub fn label_point<S: Similarity, F: LinkExponent>(
    point: &Transaction,
    reps: &Representatives,
    sim: &S,
    f: &F,
    theta: f64,
) -> Option<usize> {
    let exponent = f.f(theta);
    let mut best: Option<(f64, usize)> = None;
    for (i, set) in reps.sets.iter().enumerate() {
        let n_i = set.iter().filter(|r| sim.sim(point, r) >= theta).count();
        if n_i == 0 {
            continue;
        }
        let score = cast::usize_to_f64(n_i) / cast::usize_to_f64(set.len() + 1).powf(exponent);
        // Deterministic tie-break: keep the lower cluster index.
        if best.is_none_or(|(b, _)| score > b) {
            best = Some((score, i));
        }
    }
    best.map(|(_, i)| i)
}

/// Largest universe (in items) the bit-packed labeling index covers.
/// Beyond it the per-representative bitsets stop paying for themselves
/// (64 words each) and labeling falls back to sorted-merge
/// intersections.
pub const MAX_DENSE_UNIVERSE: usize = 4096;

/// Bit-packed representative index: one bitset per representative over
/// the item universe, so the θ-neighbor test of the labeling rule
/// becomes a handful of `AND` + popcount words instead of a branchy
/// sorted merge per representative.
///
/// The index is exact, not approximate: transactions are sorted
/// deduplicated sets, so popcounting `point ∧ rep` yields the same
/// integer `|A ∩ B|` the merge in
/// [`Transaction::intersection_len`](crate::data::Transaction::intersection_len)
/// produces, and the similarity formulas are evaluated through the very
/// same `from_counts` definitions the scalar path uses
/// ([`crate::similarity::Jaccard::from_counts`] et al.) — identical
/// floats, identical labels, only faster. Built once per
/// [`ModelSnapshot`](crate::snapshot::ModelSnapshot); queries reuse a
/// caller-provided scratch bitset so the hot path allocates nothing.
#[derive(Debug, Clone)]
pub struct DenseReps {
    /// Words per bitset row (`ceil(universe / 64)`).
    words: usize,
    /// Rep-major bit matrix: representative `r` is
    /// `bits[r * words .. (r + 1) * words]`.
    bits: Vec<u64>,
    /// `|B|` of each representative, in row order.
    lens: Vec<usize>,
    /// Per cluster: (first row, representative count).
    clusters: Vec<(usize, usize)>,
}

impl DenseReps {
    /// Builds the index, or `None` when the universe is empty or too
    /// large to pack profitably (> [`MAX_DENSE_UNIVERSE`]).
    pub fn build(reps: &Representatives, universe: usize) -> Option<DenseReps> {
        if universe == 0 || universe > MAX_DENSE_UNIVERSE {
            return None;
        }
        let words = universe.div_ceil(64);
        let total = reps.total();
        let mut bits = vec![0u64; total * words];
        let mut lens = Vec::with_capacity(total);
        let mut clusters = Vec::with_capacity(reps.num_clusters());
        let mut row = 0usize;
        for set in &reps.sets {
            clusters.push((row, set.len()));
            for rep in set {
                let base = row * words;
                for &item in rep.items() {
                    let i = cast::u32_to_usize(item);
                    if i / 64 < words {
                        bits[base + i / 64] |= 1u64 << (i % 64);
                    }
                }
                lens.push(rep.len());
                row += 1;
            }
        }
        Some(DenseReps {
            words,
            bits,
            lens,
            clusters,
        })
    }

    /// Resizes `scratch` to this index's row width (idempotent).
    pub fn prepare_scratch(&self, scratch: &mut Vec<u64>) {
        scratch.resize(self.words, 0);
    }

    /// [`label_point`] over the packed index: same scores, same
    /// deterministic lower-index tie-break, same `None`-for-outlier
    /// contract. `sim` maps `(|A∩B|, |A|, |B|)` to the similarity —
    /// pass the measure's `from_counts` so both paths share one
    /// definition. `scratch` must come through
    /// [`DenseReps::prepare_scratch`].
    pub fn label_point(
        &self,
        point: &Transaction,
        sim: impl Fn(usize, usize, usize) -> f64,
        theta: f64,
        exponent: f64,
        scratch: &mut [u64],
    ) -> Option<usize> {
        for w in scratch.iter_mut() {
            *w = 0;
        }
        for &item in point.items() {
            let i = cast::u32_to_usize(item);
            // Items outside the universe can never match a validated
            // representative; they still count toward |A| below.
            if i / 64 < self.words {
                scratch[i / 64] |= 1u64 << (i % 64);
            }
        }
        let a_len = point.len();
        let mut best: Option<(f64, usize)> = None;
        for (c, &(start, count)) in self.clusters.iter().enumerate() {
            let mut n_i = 0usize;
            for r in start..start + count {
                let row = &self.bits[r * self.words..(r + 1) * self.words];
                let mut inter = 0usize;
                for (pw, rw) in scratch.iter().zip(row) {
                    inter += cast::u32_to_usize((pw & rw).count_ones());
                }
                if sim(inter, a_len, self.lens[r]) >= theta {
                    n_i += 1;
                }
            }
            if n_i == 0 {
                continue;
            }
            let score = cast::usize_to_f64(n_i) / cast::usize_to_f64(count + 1).powf(exponent);
            if best.is_none_or(|(b, _)| score > b) {
                best = Some((score, c));
            }
        }
        best.map(|(_, i)| i)
    }
}

/// Labels every point of `data`, returning per-point cluster assignments
/// (`None` = outlier).
pub fn label_all<S: Similarity, F: LinkExponent>(
    data: &TransactionSet,
    reps: &Representatives,
    sim: &S,
    f: &F,
    theta: f64,
) -> Vec<Option<usize>> {
    data.iter()
        .map(|p| label_point(p, reps, sim, f, theta))
        .collect()
}

/// Labels many points in parallel (chunked over `threads` workers; `0` =
/// one per CPU, capped at 16). Deterministic: output order matches input.
pub fn label_many_parallel<S: Similarity, F: LinkExponent>(
    points: &[&Transaction],
    reps: &Representatives,
    sim: &S,
    f: &F,
    theta: f64,
    threads: usize,
) -> Vec<Option<usize>> {
    let n = points.len();
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(16);
    let threads = if threads == 0 { hw } else { threads };
    if threads <= 1 || n < 256 {
        return points
            .iter()
            .map(|p| label_point(p, reps, sim, f, theta))
            .collect();
    }
    let mut out: Vec<Option<usize>> = vec![None; n];
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (slice_in, slice_out) in points.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (p, o) in slice_in.iter().zip(slice_out.iter_mut()) {
                    *o = label_point(p, reps, sim, f, theta);
                }
            });
        }
    });
    out
}

/// [`label_many_parallel`] with telemetry: labeling similarity
/// evaluations (`points × total representatives` — [`label_point`] scores
/// every point against every representative) and the labeled/outlier
/// split flow into `observer`'s counters.
#[allow(clippy::too_many_arguments)] // mirrors label_many_parallel + observer
pub fn label_many_observed<S: Similarity, F: LinkExponent>(
    points: &[&Transaction],
    reps: &Representatives,
    sim: &S,
    f: &F,
    theta: f64,
    threads: usize,
    observer: &Observer,
) -> Vec<Option<usize>> {
    let span = observer.tracer().begin();
    let out = label_many_parallel(points, reps, sim, f, theta, threads);
    let counters = observer.counters();
    PipelineCounters::add(
        &counters.labeling_evaluations,
        cast::usize_to_u64(points.len()) * cast::usize_to_u64(reps.total()),
    );
    let labeled = cast::usize_to_u64(out.iter().filter(|l| l.is_some()).count());
    PipelineCounters::add(&counters.points_labeled, labeled);
    let total = cast::usize_to_u64(points.len());
    if let Some(s) = span {
        observer.tracer().end(
            s,
            "labeling.pass",
            Some(Phase::Labeling),
            0,
            Payload::new()
                .count("points", total)
                .count("representatives", cast::usize_to_u64(reps.total()))
                .count("labeled", labeled),
        );
    }
    observer.progress(Phase::Labeling, total, total);
    out
}

/// Labels a *stream* of transactions (the paper's "data residing on
/// disk"): each item is scored against the representatives and yielded
/// with its assignment, without materializing the dataset.
pub fn label_stream<'a, S, F, I>(
    stream: I,
    reps: &'a Representatives,
    sim: &'a S,
    f: &'a F,
    theta: f64,
) -> impl Iterator<Item = (Transaction, Option<usize>)> + 'a
where
    S: Similarity,
    F: LinkExponent,
    I: IntoIterator<Item = Transaction>,
    I::IntoIter: 'a,
{
    stream.into_iter().map(move |t| {
        let label = label_point(&t, reps, sim, f, theta);
        (t, label)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goodness::MarketBasket;
    use crate::sampling::seeded_rng;
    use crate::similarity::Jaccard;

    fn ts(v: Vec<Transaction>) -> TransactionSet {
        v.into_iter().collect()
    }

    fn two_cluster_fixture() -> (TransactionSet, Vec<Vec<u32>>) {
        let sample = ts(vec![
            Transaction::new([0, 1, 2]),
            Transaction::new([0, 1, 2, 3]),
            Transaction::new([10, 11, 12]),
            Transaction::new([10, 11, 12, 13]),
        ]);
        let clusters = vec![vec![0, 1], vec![2, 3]];
        (sample, clusters)
    }

    #[test]
    fn draw_respects_fraction_and_cap() {
        let (sample, clusters) = two_cluster_fixture();
        let mut rng = seeded_rng(1);
        let cfg = LabelingConfig {
            representative_fraction: 0.5,
            max_representatives: 0,
        };
        let reps = Representatives::draw(&sample, &clusters, &cfg, &mut rng).unwrap();
        assert_eq!(reps.num_clusters(), 2);
        assert_eq!(reps.set(0).len(), 1);
        assert_eq!(reps.set(1).len(), 1);

        let capped = LabelingConfig {
            representative_fraction: 1.0,
            max_representatives: 1,
        };
        let reps = Representatives::draw(&sample, &clusters, &capped, &mut rng).unwrap();
        assert_eq!(reps.total(), 2);
    }

    #[test]
    fn draw_always_takes_at_least_one() {
        let (sample, _) = two_cluster_fixture();
        let clusters = vec![vec![0], vec![2]];
        let cfg = LabelingConfig {
            representative_fraction: 0.01,
            max_representatives: 8,
        };
        let reps = Representatives::draw(&sample, &clusters, &cfg, &mut seeded_rng(3)).unwrap();
        assert_eq!(reps.set(0).len(), 1);
        assert_eq!(reps.set(1).len(), 1);
    }

    #[test]
    fn draw_validates_config() {
        let (sample, clusters) = two_cluster_fixture();
        let bad = LabelingConfig {
            representative_fraction: 0.0,
            max_representatives: 0,
        };
        assert!(Representatives::draw(&sample, &clusters, &bad, &mut seeded_rng(0)).is_err());
        assert!(Representatives::draw(
            &sample,
            &[],
            &LabelingConfig::default(),
            &mut seeded_rng(0)
        )
        .is_err());
    }

    #[test]
    fn points_label_to_their_block() {
        let (sample, clusters) = two_cluster_fixture();
        let cfg = LabelingConfig {
            representative_fraction: 1.0,
            max_representatives: 0,
        };
        let reps = Representatives::draw(&sample, &clusters, &cfg, &mut seeded_rng(0)).unwrap();
        let data = ts(vec![
            Transaction::new([0, 1, 2, 4]),
            Transaction::new([10, 11, 12, 14]),
            Transaction::new([50, 51, 52]),
        ]);
        let labels = label_all(&data, &reps, &Jaccard, &MarketBasket, 0.5);
        assert_eq!(labels, vec![Some(0), Some(1), None]);
    }

    #[test]
    fn labeling_normalizes_by_representative_count() {
        // Cluster 0 has many representatives, cluster 1 few. A point with
        // one neighbor in each must prefer the *smaller* set: the
        // normalization (|L|+1)^f penalizes big sets.
        let sample = ts(vec![
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([0, 1, 2, 3, 4, 5]),
        ]);
        let clusters = vec![vec![0, 1, 2, 3], vec![4]];
        let cfg = LabelingConfig {
            representative_fraction: 1.0,
            max_representatives: 0,
        };
        let reps = Representatives::draw(&sample, &clusters, &cfg, &mut seeded_rng(0)).unwrap();
        // This point neighbors exactly one rep of cluster 0 (none — it
        // neighbors all 4 identical reps) — craft instead a point whose
        // similarity passes only for one rep in each set is impossible with
        // identical reps; instead verify the score formula directly.
        let p = Transaction::new([0, 1]);
        let exponent = MarketBasket.f(0.5);
        let score0 = 4.0 / 5f64.powf(exponent);
        let score1 = 0.0; // sim([0,1], [0..6]) = 2/6 < 0.5
        assert!(score0 > score1);
        assert_eq!(
            label_point(&p, &reps, &Jaccard, &MarketBasket, 0.5),
            Some(0)
        );
    }

    #[test]
    fn parallel_labeling_matches_sequential() {
        // 300 points (past the parallel threshold) labeled both ways.
        let sample = ts(vec![
            Transaction::new([0, 1, 2]),
            Transaction::new([0, 1, 2, 3]),
            Transaction::new([10, 11, 12]),
            Transaction::new([10, 11, 12, 13]),
        ]);
        let clusters = vec![vec![0, 1], vec![2, 3]];
        let cfg = LabelingConfig {
            representative_fraction: 1.0,
            max_representatives: 0,
        };
        let reps = Representatives::draw(&sample, &clusters, &cfg, &mut seeded_rng(0)).unwrap();
        let points: Vec<Transaction> = (0..300u32)
            .map(|i| {
                if i % 3 == 0 {
                    Transaction::new([0, 1, 2, 100 + i])
                } else if i % 3 == 1 {
                    Transaction::new([10, 11, 12, 100 + i])
                } else {
                    Transaction::new([500 + i])
                }
            })
            .collect();
        let refs: Vec<&Transaction> = points.iter().collect();
        let seq = label_many_parallel(&refs, &reps, &Jaccard, &MarketBasket, 0.4, 1);
        let par = label_many_parallel(&refs, &reps, &Jaccard, &MarketBasket, 0.4, 4);
        assert_eq!(seq, par);
        assert_eq!(seq[0], Some(0));
        assert_eq!(seq[1], Some(1));
        assert_eq!(seq[2], None);
    }

    #[test]
    fn label_stream_matches_label_all() {
        let (sample, clusters) = two_cluster_fixture();
        let cfg = LabelingConfig {
            representative_fraction: 1.0,
            max_representatives: 0,
        };
        let reps = Representatives::draw(&sample, &clusters, &cfg, &mut seeded_rng(0)).unwrap();
        let points = vec![
            Transaction::new([0, 1, 2, 4]),
            Transaction::new([10, 11, 12, 14]),
            Transaction::new([50, 51, 52]),
        ];
        let data: TransactionSet = points.clone().into_iter().collect();
        let batch = label_all(&data, &reps, &Jaccard, &MarketBasket, 0.5);
        let streamed: Vec<Option<usize>> =
            label_stream(points, &reps, &Jaccard, &MarketBasket, 0.5)
                .map(|(_, l)| l)
                .collect();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn dense_index_matches_scalar_labeling() {
        // The bit-packed index must reproduce the scalar path bit for
        // bit: same integer intersection counts through the shared
        // `from_counts` formulas, so identical labels for every
        // measure, θ, and point — including points carrying items
        // outside the indexed universe.
        use crate::similarity::{Cosine, Dice, Overlap};

        let mut rng = seeded_rng(7);
        let universe = 96usize;
        let item = |rng: &mut crate::rng::Rng, lo: usize, span: usize| {
            u32::try_from(lo + rng.gen_range(0..span)).expect("small test universe")
        };
        let sets: Vec<Vec<Transaction>> = (0..5)
            .map(|c| {
                (0..8)
                    .map(|_| Transaction::new((0..6).map(|_| item(&mut rng, c * 16, 20) % 96)))
                    .collect()
            })
            .collect();
        let reps = Representatives::from_sets(sets);
        let dense = DenseReps::build(&reps, universe).expect("fits");
        let mut scratch = Vec::new();
        dense.prepare_scratch(&mut scratch);

        let points: Vec<Transaction> = (0..200)
            .map(|i| {
                let len = 1 + rng.gen_range(0..6usize);
                Transaction::new((0..len).map(|_| {
                    if i % 7 == 0 {
                        // Out-of-universe items: in |A|, never in a rep.
                        item(&mut rng, universe, 50)
                    } else {
                        item(&mut rng, 0, universe)
                    }
                }))
            })
            .collect();

        fn check<S: Similarity>(
            measure: &S,
            from_counts: fn(usize, usize, usize) -> f64,
            reps: &Representatives,
            dense: &DenseReps,
            points: &[Transaction],
            theta: f64,
            scratch: &mut [u64],
        ) {
            let exponent = MarketBasket.f(theta);
            for p in points {
                let scalar = label_point(p, reps, measure, &MarketBasket, theta);
                let fast = dense.label_point(p, from_counts, theta, exponent, scratch);
                assert_eq!(
                    scalar,
                    fast,
                    "measure {} theta {theta} point {:?}",
                    measure.name(),
                    p.items()
                );
            }
        }

        for theta in [0.2, 0.5, 0.8] {
            let s = &mut scratch;
            check(
                &Jaccard,
                Jaccard::from_counts,
                &reps,
                &dense,
                &points,
                theta,
                s,
            );
            check(&Dice, Dice::from_counts, &reps, &dense, &points, theta, s);
            check(
                &Overlap,
                Overlap::from_counts,
                &reps,
                &dense,
                &points,
                theta,
                s,
            );
            check(
                &Cosine,
                Cosine::from_counts,
                &reps,
                &dense,
                &points,
                theta,
                s,
            );
        }
    }

    #[test]
    fn dense_index_gates_on_universe_size() {
        let reps = Representatives::from_sets(vec![vec![Transaction::new([0, 1])]]);
        assert!(DenseReps::build(&reps, 0).is_none());
        assert!(DenseReps::build(&reps, MAX_DENSE_UNIVERSE + 1).is_none());
        assert!(DenseReps::build(&reps, MAX_DENSE_UNIVERSE).is_some());
    }

    #[test]
    fn tie_breaks_to_lower_cluster_index() {
        let sample = ts(vec![Transaction::new([0, 1]), Transaction::new([0, 1])]);
        let clusters = vec![vec![0], vec![1]];
        let cfg = LabelingConfig {
            representative_fraction: 1.0,
            max_representatives: 0,
        };
        let reps = Representatives::draw(&sample, &clusters, &cfg, &mut seeded_rng(0)).unwrap();
        let p = Transaction::new([0, 1]);
        assert_eq!(
            label_point(&p, &reps, &Jaccard, &MarketBasket, 0.5),
            Some(0)
        );
    }
}
