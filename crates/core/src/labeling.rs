//! Labeling data on disk (paper §4.2).
//!
//! After clustering a sample, the remaining points are assigned in one
//! pass. From each cluster `i` ROCK selects a set `L_i` of representative
//! points; an outside point `p` joins the cluster maximizing
//!
//! ```text
//! N_i / (|L_i| + 1)^{f(θ)}
//! ```
//!
//! where `N_i` is the number of `p`'s θ-neighbors inside `L_i`. The
//! denominator is the expected number of neighbors a genuine member would
//! have among `L_i ∪ {p}`, so large representative sets do not
//! automatically attract every point. Points with no neighbors in any
//! `L_i` are labeled outliers.

use crate::cast;
use crate::data::{Transaction, TransactionSet};
use crate::error::{Result, RockError};
use crate::goodness::LinkExponent;
use crate::rng::{Rng, SliceRandom};
use crate::similarity::Similarity;
use crate::telemetry::trace::Payload;
use crate::telemetry::{Observer, Phase, PipelineCounters};

/// Configuration for the labeling pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelingConfig {
    /// Fraction of each cluster drawn as representatives (`L_i`), in
    /// `(0, 1]`.
    pub representative_fraction: f64,
    /// Upper bound on `|L_i|` per cluster (keeps the pass `O(n·Σ|L_i|)`
    /// affordable for huge clusters). `0` means unbounded.
    pub max_representatives: usize,
}

impl Default for LabelingConfig {
    fn default() -> Self {
        LabelingConfig {
            representative_fraction: 0.25,
            max_representatives: 256,
        }
    }
}

impl LabelingConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if !(self.representative_fraction > 0.0 && self.representative_fraction <= 1.0) {
            return Err(RockError::InvalidFraction {
                name: "representative_fraction",
                value: self.representative_fraction,
            });
        }
        Ok(())
    }
}

/// Representative points (`L_i`) drawn from each cluster.
#[derive(Debug, Clone)]
pub struct Representatives {
    /// Per cluster: the representative transactions.
    sets: Vec<Vec<Transaction>>,
}

impl Representatives {
    /// Draws representatives from `clusters` (member index lists into
    /// `sample`) according to `config`.
    ///
    /// # Errors
    /// Propagates config validation; returns [`RockError::EmptyDataset`]
    /// when `clusters` is empty.
    pub fn draw(
        sample: &TransactionSet,
        clusters: &[Vec<u32>],
        config: &LabelingConfig,
        rng: &mut Rng,
    ) -> Result<Self> {
        config.validate()?;
        if clusters.is_empty() {
            return Err(RockError::EmptyDataset);
        }
        let sets = clusters
            .iter()
            .map(|members| {
                let want = cast::f64_to_usize(
                    (cast::usize_to_f64(members.len()) * config.representative_fraction).ceil(),
                )
                .max(1);
                let want = if config.max_representatives > 0 {
                    want.min(config.max_representatives)
                } else {
                    want
                };
                let mut ids: Vec<u32> = members.clone();
                ids.shuffle(rng);
                ids.truncate(want);
                ids.iter()
                    // Member indices come from the clustering over this
                    // sample, so the lookup cannot miss; skip defensively
                    // instead of panicking.
                    .filter_map(|&i| sample.transaction(cast::u32_to_usize(i)).cloned())
                    .collect()
            })
            .collect();
        Ok(Representatives { sets })
    }

    /// Reconstructs representative sets from explicit per-cluster
    /// transactions (the model-snapshot load path; `draw` is the fitting
    /// path).
    pub fn from_sets(sets: Vec<Vec<Transaction>>) -> Self {
        Representatives { sets }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.sets.len()
    }

    /// Representatives of cluster `i`.
    pub fn set(&self, i: usize) -> &[Transaction] {
        &self.sets[i]
    }

    /// Total number of representatives across clusters.
    pub fn total(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

/// Assigns one point: returns `Some(cluster)` with the best labeling score,
/// or `None` when the point has no neighbor in any representative set.
pub fn label_point<S: Similarity, F: LinkExponent>(
    point: &Transaction,
    reps: &Representatives,
    sim: &S,
    f: &F,
    theta: f64,
) -> Option<usize> {
    let exponent = f.f(theta);
    let mut best: Option<(f64, usize)> = None;
    for (i, set) in reps.sets.iter().enumerate() {
        let n_i = set.iter().filter(|r| sim.sim(point, r) >= theta).count();
        if n_i == 0 {
            continue;
        }
        let score = cast::usize_to_f64(n_i) / cast::usize_to_f64(set.len() + 1).powf(exponent);
        // Deterministic tie-break: keep the lower cluster index.
        if best.is_none_or(|(b, _)| score > b) {
            best = Some((score, i));
        }
    }
    best.map(|(_, i)| i)
}

/// Labels every point of `data`, returning per-point cluster assignments
/// (`None` = outlier).
pub fn label_all<S: Similarity, F: LinkExponent>(
    data: &TransactionSet,
    reps: &Representatives,
    sim: &S,
    f: &F,
    theta: f64,
) -> Vec<Option<usize>> {
    data.iter()
        .map(|p| label_point(p, reps, sim, f, theta))
        .collect()
}

/// Labels many points in parallel (chunked over `threads` workers; `0` =
/// one per CPU, capped at 16). Deterministic: output order matches input.
pub fn label_many_parallel<S: Similarity, F: LinkExponent>(
    points: &[&Transaction],
    reps: &Representatives,
    sim: &S,
    f: &F,
    theta: f64,
    threads: usize,
) -> Vec<Option<usize>> {
    let n = points.len();
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(16);
    let threads = if threads == 0 { hw } else { threads };
    if threads <= 1 || n < 256 {
        return points
            .iter()
            .map(|p| label_point(p, reps, sim, f, theta))
            .collect();
    }
    let mut out: Vec<Option<usize>> = vec![None; n];
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (slice_in, slice_out) in points.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (p, o) in slice_in.iter().zip(slice_out.iter_mut()) {
                    *o = label_point(p, reps, sim, f, theta);
                }
            });
        }
    });
    out
}

/// [`label_many_parallel`] with telemetry: labeling similarity
/// evaluations (`points × total representatives` — [`label_point`] scores
/// every point against every representative) and the labeled/outlier
/// split flow into `observer`'s counters.
#[allow(clippy::too_many_arguments)] // mirrors label_many_parallel + observer
pub fn label_many_observed<S: Similarity, F: LinkExponent>(
    points: &[&Transaction],
    reps: &Representatives,
    sim: &S,
    f: &F,
    theta: f64,
    threads: usize,
    observer: &Observer,
) -> Vec<Option<usize>> {
    let span = observer.tracer().begin();
    let out = label_many_parallel(points, reps, sim, f, theta, threads);
    let counters = observer.counters();
    PipelineCounters::add(
        &counters.labeling_evaluations,
        cast::usize_to_u64(points.len()) * cast::usize_to_u64(reps.total()),
    );
    let labeled = cast::usize_to_u64(out.iter().filter(|l| l.is_some()).count());
    PipelineCounters::add(&counters.points_labeled, labeled);
    let total = cast::usize_to_u64(points.len());
    if let Some(s) = span {
        observer.tracer().end(
            s,
            "labeling.pass",
            Some(Phase::Labeling),
            0,
            Payload::new()
                .count("points", total)
                .count("representatives", cast::usize_to_u64(reps.total()))
                .count("labeled", labeled),
        );
    }
    observer.progress(Phase::Labeling, total, total);
    out
}

/// Labels a *stream* of transactions (the paper's "data residing on
/// disk"): each item is scored against the representatives and yielded
/// with its assignment, without materializing the dataset.
pub fn label_stream<'a, S, F, I>(
    stream: I,
    reps: &'a Representatives,
    sim: &'a S,
    f: &'a F,
    theta: f64,
) -> impl Iterator<Item = (Transaction, Option<usize>)> + 'a
where
    S: Similarity,
    F: LinkExponent,
    I: IntoIterator<Item = Transaction>,
    I::IntoIter: 'a,
{
    stream.into_iter().map(move |t| {
        let label = label_point(&t, reps, sim, f, theta);
        (t, label)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goodness::MarketBasket;
    use crate::sampling::seeded_rng;
    use crate::similarity::Jaccard;

    fn ts(v: Vec<Transaction>) -> TransactionSet {
        v.into_iter().collect()
    }

    fn two_cluster_fixture() -> (TransactionSet, Vec<Vec<u32>>) {
        let sample = ts(vec![
            Transaction::new([0, 1, 2]),
            Transaction::new([0, 1, 2, 3]),
            Transaction::new([10, 11, 12]),
            Transaction::new([10, 11, 12, 13]),
        ]);
        let clusters = vec![vec![0, 1], vec![2, 3]];
        (sample, clusters)
    }

    #[test]
    fn draw_respects_fraction_and_cap() {
        let (sample, clusters) = two_cluster_fixture();
        let mut rng = seeded_rng(1);
        let cfg = LabelingConfig {
            representative_fraction: 0.5,
            max_representatives: 0,
        };
        let reps = Representatives::draw(&sample, &clusters, &cfg, &mut rng).unwrap();
        assert_eq!(reps.num_clusters(), 2);
        assert_eq!(reps.set(0).len(), 1);
        assert_eq!(reps.set(1).len(), 1);

        let capped = LabelingConfig {
            representative_fraction: 1.0,
            max_representatives: 1,
        };
        let reps = Representatives::draw(&sample, &clusters, &capped, &mut rng).unwrap();
        assert_eq!(reps.total(), 2);
    }

    #[test]
    fn draw_always_takes_at_least_one() {
        let (sample, _) = two_cluster_fixture();
        let clusters = vec![vec![0], vec![2]];
        let cfg = LabelingConfig {
            representative_fraction: 0.01,
            max_representatives: 8,
        };
        let reps = Representatives::draw(&sample, &clusters, &cfg, &mut seeded_rng(3)).unwrap();
        assert_eq!(reps.set(0).len(), 1);
        assert_eq!(reps.set(1).len(), 1);
    }

    #[test]
    fn draw_validates_config() {
        let (sample, clusters) = two_cluster_fixture();
        let bad = LabelingConfig {
            representative_fraction: 0.0,
            max_representatives: 0,
        };
        assert!(Representatives::draw(&sample, &clusters, &bad, &mut seeded_rng(0)).is_err());
        assert!(Representatives::draw(
            &sample,
            &[],
            &LabelingConfig::default(),
            &mut seeded_rng(0)
        )
        .is_err());
    }

    #[test]
    fn points_label_to_their_block() {
        let (sample, clusters) = two_cluster_fixture();
        let cfg = LabelingConfig {
            representative_fraction: 1.0,
            max_representatives: 0,
        };
        let reps = Representatives::draw(&sample, &clusters, &cfg, &mut seeded_rng(0)).unwrap();
        let data = ts(vec![
            Transaction::new([0, 1, 2, 4]),
            Transaction::new([10, 11, 12, 14]),
            Transaction::new([50, 51, 52]),
        ]);
        let labels = label_all(&data, &reps, &Jaccard, &MarketBasket, 0.5);
        assert_eq!(labels, vec![Some(0), Some(1), None]);
    }

    #[test]
    fn labeling_normalizes_by_representative_count() {
        // Cluster 0 has many representatives, cluster 1 few. A point with
        // one neighbor in each must prefer the *smaller* set: the
        // normalization (|L|+1)^f penalizes big sets.
        let sample = ts(vec![
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([0, 1, 2, 3, 4, 5]),
        ]);
        let clusters = vec![vec![0, 1, 2, 3], vec![4]];
        let cfg = LabelingConfig {
            representative_fraction: 1.0,
            max_representatives: 0,
        };
        let reps = Representatives::draw(&sample, &clusters, &cfg, &mut seeded_rng(0)).unwrap();
        // This point neighbors exactly one rep of cluster 0 (none — it
        // neighbors all 4 identical reps) — craft instead a point whose
        // similarity passes only for one rep in each set is impossible with
        // identical reps; instead verify the score formula directly.
        let p = Transaction::new([0, 1]);
        let exponent = MarketBasket.f(0.5);
        let score0 = 4.0 / 5f64.powf(exponent);
        let score1 = 0.0; // sim([0,1], [0..6]) = 2/6 < 0.5
        assert!(score0 > score1);
        assert_eq!(
            label_point(&p, &reps, &Jaccard, &MarketBasket, 0.5),
            Some(0)
        );
    }

    #[test]
    fn parallel_labeling_matches_sequential() {
        // 300 points (past the parallel threshold) labeled both ways.
        let sample = ts(vec![
            Transaction::new([0, 1, 2]),
            Transaction::new([0, 1, 2, 3]),
            Transaction::new([10, 11, 12]),
            Transaction::new([10, 11, 12, 13]),
        ]);
        let clusters = vec![vec![0, 1], vec![2, 3]];
        let cfg = LabelingConfig {
            representative_fraction: 1.0,
            max_representatives: 0,
        };
        let reps = Representatives::draw(&sample, &clusters, &cfg, &mut seeded_rng(0)).unwrap();
        let points: Vec<Transaction> = (0..300u32)
            .map(|i| {
                if i % 3 == 0 {
                    Transaction::new([0, 1, 2, 100 + i])
                } else if i % 3 == 1 {
                    Transaction::new([10, 11, 12, 100 + i])
                } else {
                    Transaction::new([500 + i])
                }
            })
            .collect();
        let refs: Vec<&Transaction> = points.iter().collect();
        let seq = label_many_parallel(&refs, &reps, &Jaccard, &MarketBasket, 0.4, 1);
        let par = label_many_parallel(&refs, &reps, &Jaccard, &MarketBasket, 0.4, 4);
        assert_eq!(seq, par);
        assert_eq!(seq[0], Some(0));
        assert_eq!(seq[1], Some(1));
        assert_eq!(seq[2], None);
    }

    #[test]
    fn label_stream_matches_label_all() {
        let (sample, clusters) = two_cluster_fixture();
        let cfg = LabelingConfig {
            representative_fraction: 1.0,
            max_representatives: 0,
        };
        let reps = Representatives::draw(&sample, &clusters, &cfg, &mut seeded_rng(0)).unwrap();
        let points = vec![
            Transaction::new([0, 1, 2, 4]),
            Transaction::new([10, 11, 12, 14]),
            Transaction::new([50, 51, 52]),
        ];
        let data: TransactionSet = points.clone().into_iter().collect();
        let batch = label_all(&data, &reps, &Jaccard, &MarketBasket, 0.5);
        let streamed: Vec<Option<usize>> =
            label_stream(points, &reps, &Jaccard, &MarketBasket, 0.5)
                .map(|(_, l)| l)
                .collect();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn tie_breaks_to_lower_cluster_index() {
        let sample = ts(vec![Transaction::new([0, 1]), Transaction::new([0, 1])]);
        let clusters = vec![vec![0], vec![1]];
        let cfg = LabelingConfig {
            representative_fraction: 1.0,
            max_representatives: 0,
        };
        let reps = Representatives::draw(&sample, &clusters, &cfg, &mut seeded_rng(0)).unwrap();
        let p = Transaction::new([0, 1]);
        assert_eq!(
            label_point(&p, &reps, &Jaccard, &MarketBasket, 0.5),
            Some(0)
        );
    }
}
