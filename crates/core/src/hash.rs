//! FNV-1a 64 — the workspace's dependency-free content checksum.
//!
//! Every durable artifact (`rock-model/v1` snapshots, `rock-cache/v1`
//! dataset chunks, `rock-checkpoint/v1` resume records, partial
//! streaming output) is guarded by the same hash so corruption anywhere
//! in the persistence layer is detected with one algorithm and one hex
//! spelling. The streaming form ([`Fnv1a64`]) matters for the
//! out-of-core pipeline: the partial-output checksum is carried *as the
//! running hash state* inside the checkpoint file, so a resumed process
//! continues hashing exactly where the killed one stopped without ever
//! re-reading the bytes it already labeled.

/// FNV-1a 64 offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` in one call.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(bytes);
    h.finish()
}

/// Incremental FNV-1a 64 hasher.
///
/// `Fnv1a64::from_state(h.finish())` resumes exactly where `h` stopped:
/// the digest *is* the whole state, which is what lets a checkpoint
/// carry it across process deaths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a64 {
    state: u64,
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Fnv1a64::new()
    }
}

impl Fnv1a64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a64 { state: OFFSET }
    }

    /// Resumes from a previously [`finish`](Self::finish)ed state.
    pub fn from_state(state: u64) -> Self {
        Fnv1a64 { state }
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.state = h;
    }

    /// The current digest (also the resumable state).
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Reference values for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut h = Fnv1a64::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), fnv1a64(data));
        }
    }

    #[test]
    fn state_round_trips_across_processes() {
        let mut first = Fnv1a64::new();
        first.update(b"labeled before the crash");
        let persisted = first.finish();
        // A new process resumes from the persisted digest.
        let mut second = Fnv1a64::from_state(persisted);
        second.update(b" and after the resume");
        let mut whole = Fnv1a64::new();
        whole.update(b"labeled before the crash and after the resume");
        assert_eq!(second.finish(), whole.finish());
    }
}
