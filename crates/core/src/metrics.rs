//! External cluster-validity metrics.
//!
//! Every experiment in the evaluation scores a clustering against ground
//! truth. This module provides the standard measures: the contingency
//! (confusion) matrix, purity, accuracy under the optimal cluster↔class
//! matching (Hungarian algorithm), the Adjusted Rand Index and Normalized
//! Mutual Information. Outlier points (assignment `None`) count as their
//! own throw-away cluster for purity/accuracy and are excluded from the
//! pair-counting measures.

use std::collections::HashMap;

use crate::cast;
use crate::error::{Result, RockError};

/// Contingency matrix between predicted clusters and true classes.
#[derive(Debug, Clone)]
pub struct ContingencyTable {
    /// `counts[cluster][class]`.
    counts: Vec<Vec<usize>>,
    /// Points with `None` assignment per class.
    unassigned: Vec<usize>,
    n: usize,
}

impl ContingencyTable {
    /// Builds the table from per-point predictions (`None` = outlier) and
    /// true class labels.
    ///
    /// # Errors
    /// * [`RockError::LengthMismatch`] if the slices differ in length.
    /// * [`RockError::EmptyDataset`] if they are empty.
    pub fn new(predicted: &[Option<u32>], truth: &[usize]) -> Result<Self> {
        if predicted.len() != truth.len() {
            return Err(RockError::LengthMismatch {
                left_name: "predicted",
                left: predicted.len(),
                right_name: "truth",
                right: truth.len(),
            });
        }
        if predicted.is_empty() {
            return Err(RockError::EmptyDataset);
        }
        let num_classes = truth.iter().copied().max().unwrap_or(0) + 1;
        let num_clusters = predicted
            .iter()
            .flatten()
            .copied()
            .max()
            .map_or(0, |m| cast::u32_to_usize(m) + 1);
        let mut counts = vec![vec![0usize; num_classes]; num_clusters];
        let mut unassigned = vec![0usize; num_classes];
        for (p, &t) in predicted.iter().zip(truth) {
            match p {
                Some(c) => counts[cast::u32_to_usize(*c)][t] += 1,
                None => unassigned[t] += 1,
            }
        }
        Ok(ContingencyTable {
            counts,
            unassigned,
            n: predicted.len(),
        })
    }

    /// Number of points (including unassigned).
    pub fn num_points(&self) -> usize {
        self.n
    }

    /// Number of predicted clusters.
    pub fn num_clusters(&self) -> usize {
        self.counts.len()
    }

    /// Number of true classes.
    pub fn num_classes(&self) -> usize {
        self.unassigned.len()
    }

    /// Count of class `t` members in cluster `c`.
    pub fn count(&self, c: usize, t: usize) -> usize {
        self.counts[c][t]
    }

    /// Row of cluster `c` over classes.
    pub fn row(&self, c: usize) -> &[usize] {
        &self.counts[c]
    }

    /// Points assigned to cluster `c`.
    pub fn cluster_size(&self, c: usize) -> usize {
        self.counts[c].iter().sum()
    }

    /// Points left unassigned (outliers), total.
    pub fn num_unassigned(&self) -> usize {
        self.unassigned.iter().sum()
    }

    /// Purity: each cluster votes its majority class; unassigned points
    /// count against (they match nothing).
    pub fn purity(&self) -> f64 {
        let hit: usize = self
            .counts
            .iter()
            .map(|row| row.iter().copied().max().unwrap_or(0))
            .sum();
        cast::usize_to_f64(hit) / cast::usize_to_f64(self.n)
    }

    /// Accuracy under the best one-to-one cluster↔class matching (solved
    /// exactly with the Hungarian algorithm). Extra clusters or classes are
    /// matched to zero-count dummies; unassigned points count against.
    pub fn matched_accuracy(&self) -> f64 {
        let k = self.num_clusters().max(self.num_classes());
        if k == 0 {
            return 0.0;
        }
        // Build a square profit matrix padded with zeros.
        let mut profit = vec![vec![0i64; k]; k];
        for (c, row) in self.counts.iter().enumerate() {
            for (t, &v) in row.iter().enumerate() {
                profit[c][t] = i64::try_from(v).unwrap_or(i64::MAX);
            }
        }
        let assignment = hungarian_max(&profit);
        let hit: i64 = assignment
            .iter()
            .enumerate()
            .map(|(c, &t)| profit[c][t])
            .sum();
        cast::i64_to_f64(hit) / cast::usize_to_f64(self.n)
    }

    /// Adjusted Rand Index over assigned points (unassigned excluded).
    pub fn adjusted_rand_index(&self) -> f64 {
        let n: usize = self.counts.iter().map(|r| r.iter().sum::<usize>()).sum();
        if n < 2 {
            return 0.0;
        }
        let choose2 = |x: usize| cast::usize_to_f64(x * x.saturating_sub(1) / 2);
        let sum_ij: f64 = self
            .counts
            .iter()
            .flat_map(|r| r.iter())
            .map(|&v| choose2(v))
            .sum();
        let a: f64 = self
            .counts
            .iter()
            .map(|r| choose2(r.iter().sum::<usize>()))
            .sum();
        let mut class_totals = vec![0usize; self.num_classes()];
        for row in &self.counts {
            for (t, &v) in row.iter().enumerate() {
                class_totals[t] += v;
            }
        }
        let b: f64 = class_totals.iter().map(|&v| choose2(v)).sum();
        let total = choose2(n);
        let expected = a * b / total;
        let max_index = 0.5 * (a + b);
        if (max_index - expected).abs() < f64::EPSILON {
            return 0.0;
        }
        (sum_ij - expected) / (max_index - expected)
    }

    /// Normalized Mutual Information (arithmetic-mean normalization) over
    /// assigned points.
    pub fn nmi(&self) -> f64 {
        let n: usize = self.counts.iter().map(|r| r.iter().sum::<usize>()).sum();
        if n == 0 {
            return 0.0;
        }
        let n_f = cast::usize_to_f64(n);
        let cluster_totals: Vec<usize> = self.counts.iter().map(|r| r.iter().sum()).collect();
        let mut class_totals = vec![0usize; self.num_classes()];
        for row in &self.counts {
            for (t, &v) in row.iter().enumerate() {
                class_totals[t] += v;
            }
        }
        let mut mi = 0.0;
        for (c, row) in self.counts.iter().enumerate() {
            for (t, &v) in row.iter().enumerate() {
                if v > 0 {
                    let p = cast::usize_to_f64(v) / n_f;
                    mi += p
                        * (p / ((cast::usize_to_f64(cluster_totals[c]) / n_f)
                            * (cast::usize_to_f64(class_totals[t]) / n_f)))
                            .ln();
                }
            }
        }
        let h = |totals: &[usize]| -> f64 {
            totals
                .iter()
                .filter(|&&v| v > 0)
                .map(|&v| {
                    let p = cast::usize_to_f64(v) / n_f;
                    -p * p.ln()
                })
                .sum()
        };
        let denom = 0.5 * (h(&cluster_totals) + h(&class_totals));
        if denom < f64::EPSILON {
            // Both partitions are trivial (single cluster & single class):
            // they agree perfectly.
            return 1.0;
        }
        (mi / denom).clamp(0.0, 1.0)
    }
}

/// Solves the maximum-profit square assignment problem; `profit` must be a
/// square matrix. Returns `assign[row] = column`.
///
/// Implementation: Jonker-style O(k³) Hungarian algorithm on the cost
/// matrix `max_profit − profit`, using the classic potentials formulation.
pub fn hungarian_max(profit: &[Vec<i64>]) -> Vec<usize> {
    let k = profit.len();
    if k == 0 {
        return Vec::new();
    }
    debug_assert!(profit.iter().all(|r| r.len() == k), "matrix must be square");
    let max = profit
        .iter()
        .flat_map(|r| r.iter())
        .copied()
        .max()
        .unwrap_or(0);
    // cost[i][j] = max − profit[i][j] ≥ 0.
    let cost: Vec<Vec<i64>> = profit
        .iter()
        .map(|r| r.iter().map(|&p| max - p).collect())
        .collect();

    // Potentials-based Hungarian algorithm (1-indexed internally).
    const INF: i64 = i64::MAX / 4;
    let mut u = vec![0i64; k + 1];
    let mut v = vec![0i64; k + 1];
    let mut p = vec![0usize; k + 1]; // p[col] = row matched to col
    let mut way = vec![0usize; k + 1];
    for i in 1..=k {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; k + 1];
        let mut used = vec![false; k + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=k {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=k {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assign = vec![0usize; k];
    for j in 1..=k {
        if p[j] > 0 {
            assign[p[j] - 1] = j - 1;
        }
    }
    assign
}

/// Convenience: accuracy of `predicted` against `truth` under optimal
/// matching (see [`ContingencyTable::matched_accuracy`]).
pub fn matched_accuracy(predicted: &[Option<u32>], truth: &[usize]) -> Result<f64> {
    Ok(ContingencyTable::new(predicted, truth)?.matched_accuracy())
}

/// Convenience: purity of `predicted` against `truth`.
pub fn purity(predicted: &[Option<u32>], truth: &[usize]) -> Result<f64> {
    Ok(ContingencyTable::new(predicted, truth)?.purity())
}

/// Mean and (population) standard deviation of a sample of scores —
/// experiment tables report `mean ± std` over epochs.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / cast::usize_to_f64(values.len());
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
        / cast::usize_to_f64(values.len());
    (mean, var.sqrt())
}

/// Per-cluster class breakdown, convenient for printing the paper's
/// cluster-composition tables: returns `(cluster size, count per class)`
/// sorted by decreasing size.
pub fn cluster_breakdown(
    predicted: &[Option<u32>],
    truth: &[usize],
) -> Result<Vec<(usize, Vec<usize>)>> {
    let table = ContingencyTable::new(predicted, truth)?;
    let mut rows: Vec<(usize, Vec<usize>)> = (0..table.num_clusters())
        .map(|c| (table.cluster_size(c), table.row(c).to_vec()))
        .collect();
    rows.sort_by_key(|row| std::cmp::Reverse(row.0));
    Ok(rows)
}

/// Maps arbitrary hashable labels to dense `0..k` class indices.
pub fn densify_labels<T: std::hash::Hash + Eq + Clone>(labels: &[T]) -> Vec<usize> {
    let mut map: HashMap<T, usize> = HashMap::new();
    labels
        .iter()
        .map(|l| {
            let next = map.len();
            *map.entry(l.clone()).or_insert(next)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perfect() -> (Vec<Option<u32>>, Vec<usize>) {
        (vec![Some(0), Some(0), Some(1), Some(1)], vec![0, 0, 1, 1])
    }

    #[test]
    fn contingency_counts() {
        let (p, t) = perfect();
        let table = ContingencyTable::new(&p, &t).unwrap();
        assert_eq!(table.num_points(), 4);
        assert_eq!(table.num_clusters(), 2);
        assert_eq!(table.num_classes(), 2);
        assert_eq!(table.count(0, 0), 2);
        assert_eq!(table.count(0, 1), 0);
        assert_eq!(table.cluster_size(1), 2);
    }

    #[test]
    fn perfect_clustering_scores_one() {
        let (p, t) = perfect();
        let table = ContingencyTable::new(&p, &t).unwrap();
        assert_eq!(table.purity(), 1.0);
        assert_eq!(table.matched_accuracy(), 1.0);
        assert!((table.adjusted_rand_index() - 1.0).abs() < 1e-12);
        assert!((table.nmi() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn label_permutation_does_not_matter() {
        // Swapped cluster ids: matched accuracy and ARI stay 1.
        let p = vec![Some(1), Some(1), Some(0), Some(0)];
        let t = vec![0, 0, 1, 1];
        let table = ContingencyTable::new(&p, &t).unwrap();
        assert_eq!(table.matched_accuracy(), 1.0);
        assert!((table.adjusted_rand_index() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_cluster_scores() {
        let p = vec![Some(0), Some(0), Some(0), Some(0)];
        let t = vec![0, 0, 1, 1];
        let table = ContingencyTable::new(&p, &t).unwrap();
        assert_eq!(table.purity(), 0.5);
        assert_eq!(table.matched_accuracy(), 0.5);
        assert!(table.adjusted_rand_index().abs() < 1e-12);
        assert!(table.nmi().abs() < 1e-12);
    }

    #[test]
    fn unassigned_points_count_against() {
        let p = vec![Some(0), Some(0), None, None];
        let t = vec![0, 0, 1, 1];
        let table = ContingencyTable::new(&p, &t).unwrap();
        assert_eq!(table.num_unassigned(), 2);
        assert_eq!(table.purity(), 0.5);
        assert_eq!(table.matched_accuracy(), 0.5);
    }

    #[test]
    fn more_clusters_than_classes() {
        let p = vec![Some(0), Some(1), Some(2), Some(2)];
        let t = vec![0, 0, 1, 1];
        let table = ContingencyTable::new(&p, &t).unwrap();
        // Best matching: cluster 2 → class 1 (2 pts), one of {0,1} → class 0.
        assert_eq!(table.matched_accuracy(), 0.75);
        assert_eq!(table.purity(), 1.0);
    }

    #[test]
    fn more_classes_than_clusters() {
        let p = vec![Some(0), Some(0), Some(0), Some(0)];
        let t = vec![0, 1, 2, 3];
        let table = ContingencyTable::new(&p, &t).unwrap();
        assert_eq!(table.matched_accuracy(), 0.25);
    }

    #[test]
    fn validates_inputs() {
        assert!(ContingencyTable::new(&[Some(0)], &[0, 1]).is_err());
        assert!(ContingencyTable::new(&[], &[]).is_err());
    }

    #[test]
    fn hungarian_small_cases() {
        // 2×2: diagonal is optimal.
        let a = hungarian_max(&[vec![5, 1], vec![2, 4]]);
        assert_eq!(a, vec![0, 1]);
        // 2×2: anti-diagonal is optimal.
        let a = hungarian_max(&[vec![1, 5], vec![4, 2]]);
        assert_eq!(a, vec![1, 0]);
        // Empty.
        assert!(hungarian_max(&[]).is_empty());
    }

    #[test]
    fn hungarian_3x3_known_answer() {
        // Classic example: optimal = 5 + 6 + 4 = 15 via (0→1, 1→0, 2→2)?
        let profit = vec![vec![3, 5, 1], vec![6, 2, 2], vec![1, 3, 4]];
        let a = hungarian_max(&profit);
        let total: i64 = a.iter().enumerate().map(|(i, &j)| profit[i][j]).sum();
        assert_eq!(total, 15);
        // Must be a permutation.
        let mut seen = a.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn hungarian_matches_bruteforce_on_random_matrices() {
        fn brute(profit: &[Vec<i64>]) -> i64 {
            fn rec(profit: &[Vec<i64>], row: usize, used: &mut Vec<bool>) -> i64 {
                if row == profit.len() {
                    return 0;
                }
                let mut best = i64::MIN;
                for j in 0..profit.len() {
                    if !used[j] {
                        used[j] = true;
                        best = best.max(profit[row][j] + rec(profit, row + 1, used));
                        used[j] = false;
                    }
                }
                best
            }
            rec(profit, 0, &mut vec![false; profit.len()])
        }
        let mut state = 0xdeadbeefu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 50) as i64
        };
        for _ in 0..20 {
            let k = 5;
            let profit: Vec<Vec<i64>> = (0..k).map(|_| (0..k).map(|_| next()).collect()).collect();
            let a = hungarian_max(&profit);
            let total: i64 = a.iter().enumerate().map(|(i, &j)| profit[i][j]).sum();
            assert_eq!(total, brute(&profit), "matrix {profit:?}");
        }
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[3.0]), (3.0, 0.0));
    }

    #[test]
    fn cluster_breakdown_sorted_by_size() {
        let p = vec![Some(0), Some(1), Some(1), Some(1), None];
        let t = vec![0, 0, 1, 1, 1];
        let rows = cluster_breakdown(&p, &t).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 3);
        assert_eq!(rows[0].1, vec![1, 2]);
        assert_eq!(rows[1].0, 1);
    }

    #[test]
    fn densify_labels_assigns_first_seen_order() {
        let labels = vec!["rep", "dem", "rep", "ind"];
        assert_eq!(densify_labels(&labels), vec![0, 1, 0, 2]);
        let empty: Vec<&str> = vec![];
        assert!(densify_labels(&empty).is_empty());
    }

    #[test]
    fn nmi_partial_overlap_is_between_zero_and_one() {
        let p = vec![Some(0), Some(0), Some(0), Some(1), Some(1), Some(1)];
        let t = vec![0, 0, 1, 1, 1, 0];
        let table = ContingencyTable::new(&p, &t).unwrap();
        let nmi = table.nmi();
        assert!(nmi > 0.0 && nmi < 1.0, "nmi = {nmi}");
        // This particular 2-mismatch partition scores slightly *below*
        // chance on ARI (exact value −1/9); it must stay within [−1, 1)
        // and below the NMI.
        let ari = table.adjusted_rand_index();
        assert!((-1.0..1.0).contains(&ari), "ari = {ari}");
        assert!((ari + 1.0 / 9.0).abs() < 1e-12, "ari = {ari}");
    }
}
