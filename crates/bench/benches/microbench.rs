//! Micro-benchmarks for ROCK's phase kernels: similarity, neighbor
//! graph, link table, indexed heap and goodness evaluation. Plain
//! `std::time` timing via [`rock_bench::harness`] — run with
//! `cargo bench --bench microbench`.

use std::hint::black_box;

use rock_bench::harness::{bench, group};
use rock_core::agglomerate::GoodnessKey;
use rock_core::goodness::{Goodness, MarketBasket};
use rock_core::heap::IndexedHeap;
use rock_core::links::LinkTable;
use rock_core::neighbors::NeighborGraph;
use rock_core::prelude::*;
use rock_datasets::synthetic::BlockModel;

fn dataset(n_per_block: usize) -> TransactionSet {
    BlockModel::symmetric(4, n_per_block, 30, 0.4, 0.02)
        .seed(1)
        .generate()
        .0
}

fn bench_similarity() {
    group("similarity");
    let data = dataset(50);
    let a = data.transaction(0).unwrap();
    let b = data.transaction(1).unwrap();
    let far = data.transaction(150).unwrap();
    bench("jaccard/same-block", 50, 10_000, || {
        black_box(Jaccard.sim(black_box(a), black_box(b)))
    });
    bench("jaccard/cross-block", 50, 10_000, || {
        black_box(Jaccard.sim(black_box(a), black_box(far)))
    });
}

fn bench_neighbors() {
    group("neighbors");
    for &n in &[100usize, 200] {
        let data = dataset(n);
        bench(&format!("compute/{}", data.len()), 10, 1, || {
            NeighborGraph::compute(&data, &Jaccard, 0.25, 1).unwrap()
        });
    }
}

fn bench_links() {
    group("links");
    for &n in &[100usize, 200] {
        let data = dataset(n);
        let graph = NeighborGraph::compute(&data, &Jaccard, 0.25, 1).unwrap();
        bench(&format!("compute/{}", data.len()), 10, 1, || {
            LinkTable::compute(&graph)
        });
    }
}

fn bench_heap() {
    group("heap");
    bench("insert-update-remove/1000", 20, 1, || {
        let mut h: IndexedHeap<GoodnessKey> = IndexedHeap::with_capacity(1000);
        for i in 0..1000u32 {
            h.insert_or_update(i, GoodnessKey::new((i % 97) as f64, i));
        }
        for i in (0..1000u32).step_by(3) {
            h.insert_or_update(i, GoodnessKey::new((i % 31) as f64, i));
        }
        for i in (0..1000u32).step_by(2) {
            black_box(h.remove(i));
        }
        while let Some(e) = h.pop() {
            black_box(e);
        }
    });
}

fn bench_goodness() {
    let good = Goodness::new(0.5, &MarketBasket).unwrap();
    group("goodness");
    bench("merge_goodness/cached-pow", 50, 10, || {
        let mut acc = 0.0f64;
        for n in 1..512usize {
            acc += good.merge_goodness(black_box(7), n, 512 - n);
        }
        black_box(acc)
    });
    bench("merge_goodness/large-pow", 50, 10, || {
        let mut acc = 0.0f64;
        for n in 1..64usize {
            acc += good.merge_goodness(black_box(7), n * 100, 6400 - n * 100 + 1);
        }
        black_box(acc)
    });
}

fn main() {
    bench_similarity();
    bench_neighbors();
    bench_links();
    bench_heap();
    bench_goodness();
}
