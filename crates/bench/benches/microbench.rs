//! Criterion micro-benchmarks for ROCK's phase kernels: similarity,
//! neighbor graph, link table, indexed heap and goodness evaluation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rock_core::agglomerate::GoodnessKey;
use rock_core::goodness::{Goodness, MarketBasket};
use rock_core::heap::IndexedHeap;
use rock_core::links::LinkTable;
use rock_core::neighbors::NeighborGraph;
use rock_core::prelude::*;
use rock_datasets::synthetic::BlockModel;

fn dataset(n_per_block: usize) -> TransactionSet {
    BlockModel::symmetric(4, n_per_block, 30, 0.4, 0.02)
        .seed(1)
        .generate()
        .0
}

fn bench_similarity(c: &mut Criterion) {
    let data = dataset(50);
    let a = data.transaction(0).unwrap();
    let b = data.transaction(1).unwrap();
    let far = data.transaction(150).unwrap();
    let mut g = c.benchmark_group("similarity");
    g.bench_function("jaccard/same-block", |bench| {
        bench.iter(|| black_box(Jaccard.sim(black_box(a), black_box(b))))
    });
    g.bench_function("jaccard/cross-block", |bench| {
        bench.iter(|| black_box(Jaccard.sim(black_box(a), black_box(far))))
    });
    g.finish();
}

fn bench_neighbors(c: &mut Criterion) {
    let mut g = c.benchmark_group("neighbors");
    g.sample_size(10);
    for &n in &[100usize, 200] {
        let data = dataset(n);
        g.bench_with_input(BenchmarkId::new("compute", data.len()), &data, |b, d| {
            b.iter(|| NeighborGraph::compute(d, &Jaccard, 0.25, 1).unwrap())
        });
    }
    g.finish();
}

fn bench_links(c: &mut Criterion) {
    let mut g = c.benchmark_group("links");
    g.sample_size(10);
    for &n in &[100usize, 200] {
        let data = dataset(n);
        let graph = NeighborGraph::compute(&data, &Jaccard, 0.25, 1).unwrap();
        g.bench_with_input(BenchmarkId::new("compute", data.len()), &graph, |b, gr| {
            b.iter(|| LinkTable::compute(gr))
        });
    }
    g.finish();
}

fn bench_heap(c: &mut Criterion) {
    let mut g = c.benchmark_group("heap");
    g.bench_function("insert-update-remove/1000", |bench| {
        bench.iter(|| {
            let mut h: IndexedHeap<GoodnessKey> = IndexedHeap::with_capacity(1000);
            for i in 0..1000u32 {
                h.insert_or_update(i, GoodnessKey::new((i % 97) as f64, i));
            }
            for i in (0..1000u32).step_by(3) {
                h.insert_or_update(i, GoodnessKey::new((i % 31) as f64, i));
            }
            for i in (0..1000u32).step_by(2) {
                black_box(h.remove(i));
            }
            while let Some(e) = h.pop() {
                black_box(e);
            }
        })
    });
    g.finish();
}

fn bench_goodness(c: &mut Criterion) {
    let good = Goodness::new(0.5, &MarketBasket).unwrap();
    let mut g = c.benchmark_group("goodness");
    g.bench_function("merge_goodness/cached-pow", |bench| {
        bench.iter(|| {
            let mut acc = 0.0f64;
            for n in 1..512usize {
                acc += good.merge_goodness(black_box(7), n, 512 - n);
            }
            black_box(acc)
        })
    });
    g.bench_function("merge_goodness/large-pow", |bench| {
        bench.iter(|| {
            let mut acc = 0.0f64;
            for n in 1..64usize {
                acc += good.merge_goodness(black_box(7), n * 100, 6400 - n * 100 + 1);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_similarity,
    bench_neighbors,
    bench_links,
    bench_heap,
    bench_goodness
);
criterion_main!(benches);
