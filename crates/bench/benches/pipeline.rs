//! End-to-end Criterion benchmarks: the full ROCK pipeline against the
//! baseline algorithms on the same planted-block workload, plus the θ
//! dependence of the full pipeline (the micro-scale companion to the E4
//! scalability experiment).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rock_baselines::{similarity_only, traditional, KModes, Linkage};
use rock_core::prelude::*;
use rock_datasets::synthetic::{BlockModel, MushroomModel};

fn bench_algorithms(c: &mut Criterion) {
    let (data, _) = BlockModel::symmetric(4, 100, 30, 0.4, 0.02)
        .seed(1)
        .generate();
    let (table, _, _) = MushroomModel::scaled(400, 4).seed(1).generate();

    let mut g = c.benchmark_group("end-to-end-400pts");
    g.sample_size(10);
    g.bench_function("rock", |b| {
        b.iter(|| {
            black_box(
                RockBuilder::new(4, 0.25)
                    .seed(1)
                    .build()
                    .fit(black_box(&data))
                    .unwrap(),
            )
        })
    });
    g.bench_function("traditional-centroid", |b| {
        b.iter(|| black_box(traditional(black_box(&data), 4, Linkage::Centroid).unwrap()))
    });
    g.bench_function("similarity-only-average", |b| {
        b.iter(|| black_box(similarity_only(black_box(&data), 4, &Jaccard, Linkage::Average).unwrap()))
    });
    g.bench_function("kmodes", |b| {
        b.iter(|| black_box(KModes::new(4).seed(1).fit(black_box(&table)).unwrap()))
    });
    g.finish();
}

fn bench_theta(c: &mut Criterion) {
    let (table, _, _) = MushroomModel::scaled(600, 6).seed(2).generate();
    let data = table.to_transactions();
    let mut g = c.benchmark_group("rock-theta");
    g.sample_size(10);
    for &theta in &[0.5f64, 0.73, 0.8] {
        g.bench_with_input(BenchmarkId::from_parameter(theta), &theta, |b, &t| {
            b.iter(|| {
                black_box(
                    RockBuilder::new(6, t)
                        .seed(2)
                        .build()
                        .fit(black_box(&data))
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn bench_sampling_pipeline(c: &mut Criterion) {
    let (table, _, _) = MushroomModel::scaled(2000, 8).seed(3).generate();
    let data = table.to_transactions();
    let mut g = c.benchmark_group("rock-sample-label");
    g.sample_size(10);
    for &s in &[250usize, 500, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            b.iter(|| {
                black_box(
                    RockBuilder::new(8, 0.8)
                        .sample(SampleStrategy::Fixed(s))
                        .seed(3)
                        .build()
                        .fit(black_box(&data))
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn bench_components_shortcut(c: &mut Criterion) {
    // E8's timing claim: on separated data the connected-components
    // shortcut skips the link + merge phases entirely.
    let (data, _) = BlockModel::symmetric(4, 100, 30, 0.4, 0.0)
        .seed(4)
        .generate();
    let mut g = c.benchmark_group("separated-400pts");
    g.sample_size(10);
    g.bench_function("rock-full", |b| {
        b.iter(|| {
            black_box(
                RockBuilder::new(4, 0.25)
                    .seed(4)
                    .build()
                    .fit(black_box(&data))
                    .unwrap(),
            )
        })
    });
    g.bench_function("components-shortcut", |b| {
        b.iter(|| {
            let graph = NeighborGraph::compute(black_box(&data), &Jaccard, 0.25, 1).unwrap();
            black_box(connected_components(&graph))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_algorithms,
    bench_theta,
    bench_sampling_pipeline,
    bench_components_shortcut
);
criterion_main!(benches);
