//! End-to-end benchmarks: the full ROCK pipeline against the baseline
//! algorithms on the same planted-block workload, plus the θ dependence
//! of the full pipeline (the micro-scale companion to the E4 scalability
//! experiment). Plain `std::time` timing via [`rock_bench::harness`] —
//! run with `cargo bench --bench pipeline`.

use std::hint::black_box;

use rock_baselines::{similarity_only, traditional, KModes, Linkage};
use rock_bench::harness::{bench, group};
use rock_core::prelude::*;
use rock_datasets::synthetic::{BlockModel, MushroomModel};

fn bench_algorithms() {
    let (data, _) = BlockModel::symmetric(4, 100, 30, 0.4, 0.02)
        .seed(1)
        .generate();
    let (table, _, _) = MushroomModel::scaled(400, 4).seed(1).generate();

    group("end-to-end-400pts");
    bench("rock", 10, 1, || {
        black_box(
            RockBuilder::new(4, 0.25)
                .seed(1)
                .build()
                .fit(black_box(&data))
                .unwrap(),
        )
    });
    bench("traditional-centroid", 10, 1, || {
        black_box(traditional(black_box(&data), 4, Linkage::Centroid).unwrap())
    });
    bench("similarity-only-average", 10, 1, || {
        black_box(similarity_only(black_box(&data), 4, &Jaccard, Linkage::Average).unwrap())
    });
    bench("kmodes", 10, 1, || {
        black_box(KModes::new(4).seed(1).fit(black_box(&table)).unwrap())
    });
}

fn bench_theta() {
    let (table, _, _) = MushroomModel::scaled(600, 6).seed(2).generate();
    let data = table.to_transactions();
    group("rock-theta");
    for &theta in &[0.5f64, 0.73, 0.8] {
        bench(&format!("theta/{theta}"), 10, 1, || {
            black_box(
                RockBuilder::new(6, theta)
                    .seed(2)
                    .build()
                    .fit(black_box(&data))
                    .unwrap(),
            )
        });
    }
}

fn bench_sampling_pipeline() {
    let (table, _, _) = MushroomModel::scaled(2000, 8).seed(3).generate();
    let data = table.to_transactions();
    group("rock-sample-label");
    for &s in &[250usize, 500, 1000] {
        bench(&format!("sample/{s}"), 10, 1, || {
            black_box(
                RockBuilder::new(8, 0.8)
                    .sample(SampleStrategy::Fixed(s))
                    .seed(3)
                    .build()
                    .fit(black_box(&data))
                    .unwrap(),
            )
        });
    }
}

fn bench_components_shortcut() {
    // E8's timing claim: on separated data the connected-components
    // shortcut skips the link + merge phases entirely.
    let (data, _) = BlockModel::symmetric(4, 100, 30, 0.4, 0.0)
        .seed(4)
        .generate();
    group("separated-400pts");
    bench("rock-full", 10, 1, || {
        black_box(
            RockBuilder::new(4, 0.25)
                .seed(4)
                .build()
                .fit(black_box(&data))
                .unwrap(),
        )
    });
    bench("components-shortcut", 10, 1, || {
        let graph = NeighborGraph::compute(black_box(&data), &Jaccard, 0.25, 1).unwrap();
        black_box(connected_components(&graph))
    });
}

fn main() {
    bench_algorithms();
    bench_theta();
    bench_sampling_pipeline();
    bench_components_shortcut();
}
