//! E4 — scalability (paper §5: the execution-time figure).
//!
//! The paper plots ROCK's execution time against the number of sample
//! points for several θ on the mushroom data: time grows roughly
//! quadratically in n (the neighbor phase), and higher θ is faster
//! because the neighbor graph — and hence the link table and merge work —
//! is sparser. This binary prints the data series behind that figure,
//! broken down by phase.

use rock_bench::cli::ExpOptions;
use rock_bench::table::{banner, TextTable};
use rock_core::prelude::*;
use rock_core::telemetry::{format_secs as secs, time_it};
use rock_datasets::synthetic::MushroomModel;

fn main() {
    let opts = ExpOptions::from_env();
    banner("E4: execution time vs sample points (mushroom-like, k = 21)");

    let sizes: Vec<usize> = [1000usize, 2000, 3000, 4000, 6000, 8124]
        .iter()
        .map(|&s| opts.scaled(s, 200))
        .collect();
    let thetas = [0.5f64, 0.73, 0.8];

    let full = MushroomModel::default().seed(opts.seed);
    let (table, _, _) = full.generate();
    let data = table.to_transactions();

    let mut t = TextTable::new([
        "n",
        "theta",
        "neighbors",
        "links",
        "merge",
        "total",
        "avg_degree",
        "clusters",
    ]);
    // With --trace, the very first fit writes a rock-trace/v1 stream;
    // min-of-epochs timing absorbs its (small) overhead.
    let mut trace_pending = opts.trace.clone();
    for &n in &sizes {
        let n = n.min(data.len());
        for &theta in &thetas {
            // Min-of-epochs: wall times feed the CI regression gate
            // (bench_check), and the fastest epoch is the stablest point
            // estimate on a shared machine. Counters and clustering are
            // identical across epochs, so only the clock is being picked.
            let mut best = None;
            for _ in 0..opts.epochs {
                let observer = Observer::new();
                let mut builder = RockBuilder::new(21.min(n), theta)
                    .sample(SampleStrategy::Fixed(n))
                    .labeling(LabelingConfig {
                        representative_fraction: 0.0001, // timing the clustering, not labeling
                        max_representatives: 1,
                    })
                    .seed(opts.seed);
                if let Some(path) = trace_pending.take() {
                    builder = builder.trace(path);
                }
                let rock = builder.build();
                let (model, wall) = time_it(|| rock.fit_observed(&data, &observer));
                let model = model.expect("fit");
                if best
                    .as_ref()
                    .is_none_or(|(w, _, _): &(std::time::Duration, _, _)| wall < *w)
                {
                    best = Some((wall, model, observer));
                }
            }
            let (wall, model, observer) = best.expect("at least one epoch");
            let s = model.stats();
            opts.emit_metrics(&Metrics::collect(
                &observer,
                RunInfo {
                    experiment: "exp_scalability".into(),
                    n: data.len(),
                    k: 21.min(n),
                    theta,
                    seed: opts.seed,
                    sample_size: s.sample_size,
                    clusters: model.num_clusters(),
                    outliers: model.outliers().len(),
                },
                wall,
            ));
            t.row([
                n.to_string(),
                format!("{theta:.2}"),
                secs(s.timings.neighbors),
                secs(s.timings.links),
                secs(s.timings.merge),
                secs(s.timings.neighbors + s.timings.links + s.timings.merge),
                format!("{:.0}", s.avg_degree),
                model.num_clusters().to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "\n(Series to compare with the paper's figure: total time vs n per theta.\n\
         Expect ~quadratic growth in n and faster runs at higher theta.)"
    );
}
