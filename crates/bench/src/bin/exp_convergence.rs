//! E9 — merge convergence and choosing k from one run (extension).
//!
//! ROCK greedily maximizes the criterion function E_l; recording the merge
//! history exposes (i) the criterion trajectory, (ii) the goodness of each
//! merge, and (iii) — via the dendrogram — the accuracy at *every* cluster
//! count from a single run. The goodness cliff should coincide with the
//! planted cluster count and the accuracy peak.

use rock_bench::cli::ExpOptions;
use rock_bench::table::{banner, f4, TextTable};
use rock_core::metrics::matched_accuracy;
use rock_core::prelude::*;
use rock_datasets::synthetic::LatentClassModel;

fn main() {
    let opts = ExpOptions::from_env();
    let k_true = 6usize;
    banner("E9: convergence & k-selection from one merge run");
    let m = LatentClassModel::uniform(k_true, opts.scaled(80, 20), 14, 4)
        .concentration(0.85)
        .noise_attributes(0.2)
        .seed(opts.seed);
    let (table, truth) = m.generate();
    let data = table.to_transactions();
    println!(
        "{} points, {} latent classes (concentration 0.85, 20% noise attributes)",
        data.len(),
        k_true
    );

    let model = RockBuilder::new(1, 0.4)
        .record_history(true)
        .seed(opts.seed)
        .build()
        .fit(&data)
        .expect("fit");
    let dendro = model.dendrogram().expect("history recorded");
    println!(
        "merged down to {} cluster(s) in {} merges",
        dendro.min_clusters(),
        dendro.num_merges()
    );

    banner("accuracy and merge quality vs cluster count (single run, dendrogram cuts)");
    let mut t = TextTable::new(["k", "accuracy", "goodness of next merge", "criterion E_l"]);
    let floor = dendro.min_clusters();
    let steps = dendro.steps();
    for k in (floor..=24.min(data.len())).rev() {
        if k != floor && k != k_true && k % 4 != 0 && k > 2 {
            continue; // print a readable subset
        }
        let Some(assign) = dendro.cut_assignments(k) else {
            continue;
        };
        let pred: Vec<Option<u32>> = assign.iter().map(|&c| Some(c)).collect();
        // The merge that goes from k to k−1 clusters is step n−k.
        let next_merge = steps.get(data.len() - k).map(|s| s.goodness);
        let criterion = if data.len() - k == 0 {
            0.0
        } else {
            steps[data.len() - k - 1].criterion
        };
        t.row([
            k.to_string(),
            f4(matched_accuracy(&pred, &truth).expect("metrics")),
            next_merge.map_or("-".to_string(), f4),
            f4(criterion),
        ]);
    }
    t.print();

    let suggested = dendro.suggest_k(k_true).unwrap_or(0);
    println!("\nsuggest_k (goodness cliff): {suggested}   planted: {k_true}");

    banner("criterion trajectory (every 50th merge)");
    let mut t = TextTable::new(["merge#", "criterion E_l", "goodness"]);
    for (i, s) in steps.iter().enumerate() {
        if i % 50 == 0 || i + 1 == steps.len() {
            t.row([i.to_string(), f4(s.criterion), f4(s.goodness)]);
        }
    }
    t.print();
}
