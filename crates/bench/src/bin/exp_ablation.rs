//! E6 — ablations called out in `DESIGN.md`.
//!
//! 1. **Links vs raw similarity**: the same agglomeration driven by the
//!    link-goodness measure vs by pairwise Jaccard only, on bridged basket
//!    data and on the noisy votes regime.
//! 2. **The `f(θ)` exponent**: the paper's market-basket exponent
//!    `(1−θ)/(1+θ)` vs constant exponents (0 → raw cross-link counts,
//!    1 → assume every member pair linked), isolating how much the
//!    expected-links normalization matters.
//! 3. **Outlier machinery**: ROCK with and without the neighbor filter +
//!    pruning on debris-contaminated data.

use rock_baselines::{similarity_only, Linkage};
use rock_bench::cli::ExpOptions;
use rock_bench::table::{banner, f4, TextTable};
use rock_core::metrics::matched_accuracy;
use rock_core::prelude::*;
use rock_datasets::synthetic::{intro_example, BlockModel, Party, VotesModel};

fn main() {
    let opts = ExpOptions::from_env();

    // ── Ablation 1: links vs raw similarity ───────────────────────────
    banner("E6a: links vs raw similarity");
    let mut t = TextTable::new(["dataset", "ROCK (links)", "sim-only avg", "sim-only single"]);
    {
        let (data, truth) = intro_example(4);
        t.row([
            "baskets+bridges".to_string(),
            f4(rock_acc(&data, &truth, 2, 0.5, opts.seed)),
            f4(sim_acc(&data, &truth, 2, Linkage::Average)),
            f4(sim_acc(&data, &truth, 2, Linkage::Single)),
        ]);
    }
    {
        let (table, parties) = VotesModel {
            partisan_issues: 10,
            party_line: 0.75,
            missing: 0.08,
            ..VotesModel::default()
        }
        .seed(opts.seed)
        .generate();
        let truth: Vec<usize> = parties
            .iter()
            .map(|p| usize::from(*p == Party::Republican))
            .collect();
        let data = table.to_transactions();
        t.row([
            "votes (noisy)".to_string(),
            f4(rock_acc(&data, &truth, 2, 0.35, opts.seed)),
            f4(sim_acc(&data, &truth, 2, Linkage::Average)),
            f4(sim_acc(&data, &truth, 2, Linkage::Single)),
        ]);
    }
    t.print();

    // ── Ablation 2: the f(θ) exponent ─────────────────────────────────
    banner("E6b: goodness exponent f(theta) — noisy unbalanced parties");
    // The noisy votes regime has abundant cross-links; the expected-links
    // normalization is what keeps the bigger party from absorbing the
    // smaller one merge by merge.
    let (vtable, vparties) = VotesModel {
        partisan_issues: 10,
        party_line: 0.75,
        missing: 0.08,
        ..VotesModel::default()
    }
    .seed(opts.seed ^ 0xf0)
    .generate();
    let vtruth: Vec<usize> = vparties
        .iter()
        .map(|p| usize::from(*p == Party::Republican))
        .collect();
    let vdata = vtable.to_transactions();
    let mut t = TextTable::new(["exponent", "accuracy", "clusters"]);
    let theta = 0.35;
    for (name, acc_clusters) in [
        (
            "market-basket (paper)",
            fit_exponent(&vdata, &vtruth, theta, MarketBasket, opts.seed),
        ),
        (
            "constant 0 (raw links)",
            fit_exponent(&vdata, &vtruth, theta, ConstantExponent(0.0), opts.seed),
        ),
        (
            "constant 1 (all pairs)",
            fit_exponent(&vdata, &vtruth, theta, ConstantExponent(1.0), opts.seed),
        ),
    ] {
        t.row([
            name.to_string(),
            f4(acc_clusters.0),
            acc_clusters.1.to_string(),
        ]);
    }
    t.print();

    // ── Ablation 3: outlier machinery ──────────────────────────────────
    banner("E6c: outlier machinery on debris-contaminated blocks");
    let (clean, mut truth) = BlockModel::symmetric(3, 100, 40, 0.35, 0.02)
        .seed(opts.seed)
        .generate();
    // Append 30 uniform-random debris transactions.
    let mut all: Vec<Transaction> = clean.iter().cloned().collect();
    let mut rng = seeded_rng(opts.seed ^ 0xdeb);
    for _ in 0..30 {
        let items: Vec<u32> = (0..120u32).filter(|_| rng.gen::<f64>() < 0.12).collect();
        all.push(Transaction::new(items));
        truth.push(3);
    }
    let data = TransactionSet::new(all, 120);
    let mut t = TextTable::new(["configuration", "accuracy", "clusters", "outliers"]);
    for (name, filter, prune) in [
        // The checkpoint must fire after genuine blocks have coalesced;
        // with 330 points and fast-merging blocks, 5% (~16 clusters) is
        // the right moment (the paper's "1/3 of points" rule of thumb
        // assumes outlier-slowed merging on much larger inputs).
        (
            "filter + prune (paper)",
            NeighborFilter::new(3),
            Some(PruneConfig {
                checkpoint_fraction: 0.05,
                max_prune_size: 2,
            }),
        ),
        ("filter only", NeighborFilter::new(3), None),
        ("no outlier handling", NeighborFilter::disabled(), None),
    ] {
        let mut b = RockBuilder::new(3, 0.2)
            .neighbor_filter(filter)
            .seed(opts.seed);
        if let Some(p) = prune {
            b = b.prune(p);
        }
        let model = b.build().fit(&data).expect("fit");
        let pred: Vec<Option<u32>> = model.assignments().iter().map(|a| a.map(|c| c.0)).collect();
        t.row([
            name.to_string(),
            f4(matched_accuracy(&pred, &truth).unwrap()),
            model.num_clusters().to_string(),
            model.outliers().len().to_string(),
        ]);
    }
    t.print();
    println!(
        "\n(debris counts as its own class, so discarding it as outliers is\n\
         scored as correct 'none-of-the-above' handling by purity/accuracy)"
    );
}

fn rock_acc(data: &TransactionSet, truth: &[usize], k: usize, theta: f64, seed: u64) -> f64 {
    let model = RockBuilder::new(k, theta)
        .neighbor_filter(NeighborFilter::disabled())
        .seed(seed)
        .build()
        .fit(data)
        .expect("fit");
    let pred: Vec<Option<u32>> = model.assignments().iter().map(|a| a.map(|c| c.0)).collect();
    matched_accuracy(&pred, truth).unwrap()
}

fn sim_acc(data: &TransactionSet, truth: &[usize], k: usize, linkage: Linkage) -> f64 {
    let c = similarity_only(data, k, &Jaccard, linkage).expect("sim-only");
    matched_accuracy(&c.as_predictions(), truth).unwrap()
}

fn fit_exponent<F: LinkExponent>(
    data: &TransactionSet,
    truth: &[usize],
    theta: f64,
    f: F,
    seed: u64,
) -> (f64, usize) {
    let model = RockBuilder::new(2, theta)
        .link_exponent(f)
        .seed(seed)
        .build()
        .fit(data)
        .expect("fit");
    let pred: Vec<Option<u32>> = model.assignments().iter().map(|a| a.map(|c| c.0)).collect();
    (
        matched_accuracy(&pred, truth).unwrap(),
        model.num_clusters(),
    )
}
