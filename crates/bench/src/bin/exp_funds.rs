//! E3 — US mutual funds time series (paper §5: the fund-cluster table).
//!
//! The paper converts daily NAV series (Jan'93–Mar'95) to Up/Down
//! categorical records and runs ROCK with a high θ; the resulting clusters
//! align with fund sectors (bond funds together, growth funds together,
//! international, precious metals, …).
//!
//! Offline we generate sector-factor series (see `DESIGN.md`,
//! *Substitutions*): funds in a sector share a random-walk factor plus
//! idiosyncratic noise, so same-sector funds co-move. The *shape* under
//! test: ROCK's clusters align with sectors; the Euclidean baseline on the
//! same encoding does noticeably worse on the sparser sectors.

use rock_baselines::{traditional, KMeans, Linkage};
use rock_bench::cli::ExpOptions;
use rock_bench::table::{banner, f4, TextTable};
use rock_core::metrics::{matched_accuracy, ContingencyTable};
use rock_core::prelude::*;
use rock_datasets::synthetic::FundsModel;
use rock_datasets::timeseries::UpDownConfig;

const THETA: f64 = 0.5;

fn main() {
    let opts = ExpOptions::from_env();
    banner("E3: mutual funds — ROCK on Up/Down transactions");

    // Noisier-than-default idiosyncratic volatility: same-sector funds
    // still co-move, but day-to-day agreement is far from perfect — the
    // regime where the threshold + links machinery earns its keep.
    let mut model = FundsModel {
        idio_vol: 0.8,
        ..FundsModel::default()
    }
    .seed(opts.seed);
    if opts.scale < 1.0 {
        for s in &mut model.sectors {
            s.funds = ((s.funds as f64 * opts.scale).round() as usize).max(5);
        }
        model.days = opts.scaled(550, 60);
    }
    let k = model.sectors.len();
    println!(
        "{} funds in {} sectors over {} trading days; theta = {THETA}, k = {k}",
        model.num_funds(),
        k,
        model.days
    );

    let (data, labels) = model.generate(&UpDownConfig::default());

    let rock = RockBuilder::new(k, THETA)
        .seed(opts.seed)
        .build()
        .fit(&data)
        .expect("rock fit");
    let rock_pred: Vec<Option<u32>> = rock.assignments().iter().map(|a| a.map(|c| c.0)).collect();

    banner("ROCK cluster x sector composition");
    let table = ContingencyTable::new(&rock_pred, &labels).expect("contingency");
    let mut t = TextTable::new({
        let mut h = vec!["cluster".to_string(), "size".to_string()];
        h.extend(model.sectors.iter().map(|s| s.name.clone()));
        h
    });
    for c in 0..table.num_clusters() {
        let mut row = vec![format!("C{c}"), table.cluster_size(c).to_string()];
        row.extend(table.row(c).iter().map(|v| v.to_string()));
        t.row(row);
    }
    t.print();
    if table.num_unassigned() > 0 {
        println!("(outliers: {})", table.num_unassigned());
    }

    // Euclidean baselines on the same one-hot Up/Down encoding.
    let km = KMeans::new(k)
        .seed(opts.seed)
        .fit(&rock_baselines::onehot::encode_transactions(&data))
        .expect("kmeans");
    let trad = traditional(&data, k, Linkage::Centroid).expect("traditional");

    banner("Sector recovery (accuracy under optimal matching)");
    let mut s = TextTable::new(["algorithm", "accuracy", "NMI"]);
    s.row([
        "ROCK".to_string(),
        f4(matched_accuracy(&rock_pred, &labels).unwrap()),
        f4(table.nmi()),
    ]);
    let kt = ContingencyTable::new(&km.as_predictions(), &labels).unwrap();
    s.row([
        "k-means (one-hot)".to_string(),
        f4(kt.matched_accuracy()),
        f4(kt.nmi()),
    ]);
    let tt = ContingencyTable::new(&trad.as_predictions(), &labels).unwrap();
    s.row([
        "traditional (centroid)".to_string(),
        f4(tt.matched_accuracy()),
        f4(tt.nmi()),
    ]);
    s.print();
}
