//! E11 — crash-safe out-of-core labeling at 1M rows (DESIGN.md §15).
//!
//! The clustering phases run on a sample (paper §4.1), but *labeling*
//! touches every row, so it is the phase that must scale past memory.
//! This experiment measures the full out-of-core path on one million
//! synthetic market baskets: the dataset is generated slice by slice
//! straight into a `rock-cache/v1` chunked binary cache (never more than
//! one slice in memory), a snapshot is fitted on a 2 000-row sample, and
//! the cache is streamed through `StreamLabeler` under a fixed 64 MiB
//! memory budget with a checkpoint after every chunk.
//!
//! Two invariants are asserted on every run, not just reported:
//!
//! * the streamed run **completes** under the memory budget (a trip would
//!   degrade, and the experiment fails loudly);
//! * killing the stream half way (chunk-cap pause, simulating a crash)
//!   and resuming from the checkpoint produces **byte-identical** output.
//!
//! The min-of-epochs telemetry line feeds `results/BENCH_scale.json` and
//! the `ci.sh --bench` regression gate.

use std::path::PathBuf;

use rock_bench::cli::ExpOptions;
use rock_bench::table::{banner, TextTable};
use rock_core::cast;
use rock_core::prelude::*;
use rock_core::telemetry::format_secs as secs;
use rock_core::telemetry::time_it;
use rock_datasets::cache::{CacheBuilder, DatasetCache};
use rock_datasets::synthetic::BasketModel;

/// Planted structure: 4 clusters over disjoint 25-item universes.
const CLUSTERS: usize = 4;
const ITEMS_EACH: u32 = 20;
const BASKET_SIZE: (usize, usize) = (6, 10);
/// Rows generated (and cached) per slice; bounds generation memory.
const SLICE_ROWS: usize = 62_500;
/// Memory ceiling for the streaming run.
const MEM_BUDGET: u64 = 64 << 20;

/// One generation slice: the same planted clusters, a slice-specific
/// seed, `rows` baskets total.
fn slice_model(seed: u64, slice: u64, rows: usize) -> BasketModel {
    BasketModel::disjoint(CLUSTERS, rows / CLUSTERS, ITEMS_EACH, BASKET_SIZE)
        .seed(seed ^ (0x9e37_79b9 * (slice + 1)))
}

/// Streams one full labeling run from scratch (any stale checkpoint or
/// output removed first) and returns `(stats, wall)`.
fn stream_once(
    snapshot: &ModelSnapshot,
    cache: &DatasetCache,
    output: &PathBuf,
    checkpoint: &PathBuf,
    observer: &Observer,
) -> (StreamStats, std::time::Duration) {
    std::fs::remove_file(output).ok();
    std::fs::remove_file(checkpoint).ok();
    std::fs::remove_file(rock_core::stream::partial_path(output)).ok();
    let guard = Guard::new(RunBudget::unlimited().memory(MEM_BUDGET));
    let (outcome, wall) = time_it(|| {
        StreamLabeler::new(snapshot)
            .run(cache, output, checkpoint, &guard, observer)
            .expect("streaming run")
    });
    match outcome {
        StreamOutcome::Complete(stats) => (stats, wall),
        other => panic!(
            "expected completion under {} MiB budget, got {other:?}",
            MEM_BUDGET >> 20
        ),
    }
}

fn main() {
    let opts = ExpOptions::from_env();
    banner("E11: crash-safe out-of-core labeling (1M baskets, 64 MiB budget)");

    let n = opts.scaled(1_000_000, 4_000);
    let slice_rows = SLICE_ROWS.min(n);
    let chunk_rows = (n / 64).max(500);
    let dir = std::env::temp_dir().join("rock-exp-scale");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    let cache_path = dir.join("scale.rockcache");
    let output = dir.join("scale.rockassign");
    let checkpoint = dir.join("scale.ckpt");

    // Build the cache slice by slice: at most `slice_rows` baskets are
    // ever in memory, however large n grows.
    let universe = CLUSTERS * ITEMS_EACH as usize;
    let (cache, build_wall) = time_it(|| {
        let mut builder =
            CacheBuilder::create(&cache_path, universe, chunk_rows).expect("cache builder");
        let mut remaining = n;
        let mut slice = 0u64;
        while remaining > 0 {
            // The generator emits whole clusters; round up, then push only
            // the rows still needed so the cache holds exactly n.
            let rows = slice_rows.min(remaining).max(CLUSTERS);
            let (ts, _) = slice_model(opts.seed, slice, rows).generate();
            let take = remaining.min(ts.len());
            for t in ts.iter().take(take) {
                builder.push(t).expect("cache push");
            }
            remaining -= take;
            slice += 1;
        }
        builder.finish().expect("cache finish")
    });
    let cache_bytes = std::fs::metadata(&cache_path).expect("cache size").len();
    println!(
        "cached {} rows / {} chunks ({} rows each, {:.1} MiB) in {}",
        cache.total_rows(),
        cache.total_chunks(),
        chunk_rows,
        cast::u64_to_f64(cache_bytes) / (1024.0 * 1024.0),
        secs(build_wall),
    );

    // Fit the labeling snapshot on a small sample slice.
    let (sample, _) = slice_model(opts.seed, 0, 2_000.min(n)).generate();
    // Two random baskets from one 20-item pool share ~3 of ~13 distinct
    // items (Jaccard ≈ 0.25); cross-cluster pairs share nothing. θ = 0.2
    // sits between, giving dense within-cluster link structure.
    let theta = 0.2;
    let model = RockBuilder::new(CLUSTERS, theta)
        .sample(SampleStrategy::All)
        .labeling(LabelingConfig {
            representative_fraction: 0.02,
            max_representatives: 24,
        })
        .seed(opts.seed)
        .build()
        .fit(&sample)
        .expect("fit sample");
    let snapshot = ModelSnapshot::from_model(
        &sample,
        &model,
        theta,
        MarketBasket.f(theta),
        SimilarityKind::Jaccard,
        OutlierPolicy::Mark,
        &LabelingConfig {
            representative_fraction: 0.02,
            max_representatives: 24,
        },
        opts.seed,
    )
    .expect("snapshot");
    println!(
        "snapshot: {} clusters, {} representatives, theta = {theta}",
        snapshot.num_clusters(),
        snapshot.representatives().total()
    );

    // Min-of-epochs timing of the full streamed run. Counters and output
    // bytes are identical across epochs; only the clock is being picked.
    let mut best: Option<(StreamStats, std::time::Duration, Observer)> = None;
    for _ in 0..opts.epochs {
        let observer = Observer::new();
        let (stats, wall) = stream_once(&snapshot, &cache, &output, &checkpoint, &observer);
        if best.as_ref().is_none_or(|(_, w, _)| wall < *w) {
            best = Some((stats, wall, observer));
        }
    }
    let (stats, label_wall, observer) = best.expect("at least one epoch");
    let reference = std::fs::read(&output).expect("streamed output");
    assert!(
        !checkpoint.exists(),
        "completed run must remove its checkpoint"
    );

    // Crash/resume invariant: pause half way (the checkpointed state a
    // kill -9 would leave), then resume to completion — byte-identical.
    let resumed_output = dir.join("scale-resumed.rockassign");
    std::fs::remove_file(&resumed_output).ok();
    std::fs::remove_file(&checkpoint).ok();
    let guard = Guard::unlimited();
    let half = (cache.total_chunks() / 2).max(1);
    let paused = StreamLabeler::new(&snapshot)
        .stop_after_chunks(half)
        .run(
            &cache,
            &resumed_output,
            &checkpoint,
            &guard,
            &Observer::new(),
        )
        .expect("paused run");
    assert!(
        matches!(paused, StreamOutcome::Paused(_)),
        "expected a pause at the chunk cap, got {paused:?}"
    );
    let resumed = StreamLabeler::new(&snapshot)
        .run(
            &cache,
            &resumed_output,
            &checkpoint,
            &guard,
            &Observer::new(),
        )
        .expect("resumed run");
    let StreamOutcome::Complete(resumed_stats) = resumed else {
        panic!("resume must complete, got {resumed:?}");
    };
    assert!(resumed_stats.resumed, "second run must resume the first");
    let resumed_bytes = std::fs::read(&resumed_output).expect("resumed output");
    assert_eq!(
        reference, resumed_bytes,
        "kill-and-resume output must be byte-identical to the uninterrupted run"
    );
    println!(
        "resume check: paused after {half} chunks, resumed to byte-identical output ({} bytes)",
        reference.len()
    );

    opts.emit_metrics(&Metrics::collect(
        &observer,
        RunInfo {
            experiment: "exp_scale".into(),
            n,
            k: CLUSTERS,
            theta,
            seed: opts.seed,
            sample_size: sample.len(),
            clusters: snapshot.num_clusters(),
            outliers: cast::u64_to_usize(stats.outliers),
        },
        label_wall,
    ));

    let c = observer.counters();
    let mut t = TextTable::new([
        "rows",
        "chunks",
        "build",
        "label",
        "labeled",
        "outliers",
        "retries",
        "peak_buf_KiB",
    ]);
    t.row([
        stats.rows.to_string(),
        stats.chunks_done.to_string(),
        secs(build_wall),
        secs(label_wall),
        stats.labeled.to_string(),
        stats.outliers.to_string(),
        c.io_retries
            .load(std::sync::atomic::Ordering::Relaxed)
            .to_string(),
        (observer.memory().snapshot().stream_buffers >> 10).to_string(),
    ]);
    t.print();
    println!(
        "\n(Completed under a {} MiB ceiling; checkpoint written after each of the {} chunks.)",
        MEM_BUDGET >> 20,
        stats.chunks_done
    );
    std::fs::remove_dir_all(&dir).ok();
}
