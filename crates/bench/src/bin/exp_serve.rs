//! E-serve — online labeling latency and throughput over loopback HTTP.
//!
//! Fits ROCK on a mushroom-like table, captures the model as a
//! `rock-model/v1` snapshot, serves it with an in-process `rock-serve`
//! worker pool, then replays the training points as `/label` queries:
//!
//! * a **sequential** phase over one keep-alive connection measures
//!   per-request latency — recorded into the log2-bucketed
//!   `LatencyHistogram` of `rock-trace/v1`, reported as its p50 / p99,
//! * a **concurrent** phase (4 connections) measures aggregate
//!   throughput.
//!
//! `--metrics <FILE>` appends one `rock-serve-bench/v1` NDJSON line
//! (this is the line committed as `results/BENCH_serve.json`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rock_bench::cli::ExpOptions;
use rock_bench::table::{banner, f4, TextTable};
use rock_core::cast::u64_to_f64;
use rock_core::prelude::*;
use rock_core::snapshot::{ModelSnapshot, OutlierPolicy, SimilarityKind};
use rock_core::telemetry::json::JsonObj;
use rock_core::telemetry::trace::LatencyHistogram;
use rock_datasets::synthetic::MushroomModel;
use rock_serve::server::{ServeConfig, Server, ServerHandle};

const THETA: f64 = 0.8;
const K: usize = 6;
const CONCURRENT_CONNS: usize = 4;

fn main() {
    let opts = ExpOptions::from_env();
    banner("E-serve: rock-serve loopback labeling latency and throughput");

    let n = opts.scaled(2000, 300);
    let (table, _, _) = MushroomModel::scaled(n, K).seed(opts.seed).generate();
    let data = table.to_transactions();
    println!("fit: mushroom-like n = {n}, theta = {THETA}, k = {K}");
    let model = RockBuilder::new(K, THETA)
        .seed(opts.seed)
        .build()
        .fit(&data)
        .expect("fit");
    let snapshot = ModelSnapshot::from_model(
        &data,
        &model,
        THETA,
        MarketBasket.f(THETA),
        SimilarityKind::Jaccard,
        OutlierPolicy::Mark,
        &LabelingConfig::default(),
        opts.seed,
    )
    .expect("snapshot");
    println!(
        "snapshot: {} clusters, {} representatives",
        snapshot.num_clusters(),
        snapshot.representatives().total()
    );

    let bodies: Vec<String> = data
        .transactions()
        .iter()
        .map(|t| {
            let items: Vec<String> = t.items().iter().map(u32::to_string).collect();
            format!("{{\"items\":[{}]}}", items.join(","))
        })
        .collect();

    let config = ServeConfig {
        threads: CONCURRENT_CONNS + 1,
        trace: opts.trace.clone(),
        ..ServeConfig::default()
    };
    let handle = Server::start(snapshot, config).expect("server start");

    // ── Sequential phase: latency percentiles ──────────────────────────
    // Latencies go into the same log2-bucketed histogram the tracer
    // flushes (`serve.request_ns`): mergeable, O(1) per record, and the
    // reported p50/p99 are the bucket-bound estimates of rock-trace/v1.
    let sequential = opts.scaled(4000, 400);
    let mut hist = LatencyHistogram::new();
    let mut client = Client::connect(&handle);
    let seq_start = Instant::now();
    for i in 0..sequential {
        let body = &bodies[i % bodies.len()];
        let t0 = Instant::now();
        client.label(body);
        hist.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    let seq_wall = seq_start.elapsed();
    drop(client);
    let ns_to_ms = |ns: u64| u64_to_f64(ns) / 1.0e6;
    let p50 = ns_to_ms(hist.percentile(0.50));
    let p99 = ns_to_ms(hist.percentile(0.99));
    let seq_rps = u64_to_f64(hist.count()) / seq_wall.as_secs_f64();

    // ── Concurrent phase: aggregate throughput ─────────────────────────
    let per_conn = opts.scaled(2000, 200);
    let conc_start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CONCURRENT_CONNS {
            let bodies = &bodies;
            let handle = &handle;
            scope.spawn(move || {
                let mut client = Client::connect(handle);
                for i in 0..per_conn {
                    client.label(&bodies[(c + i * CONCURRENT_CONNS) % bodies.len()]);
                }
            });
        }
    });
    let conc_wall = conc_start.elapsed();
    let conc_total = CONCURRENT_CONNS * per_conn;
    let conc_rps = conc_total as f64 / conc_wall.as_secs_f64();

    let counters = handle.counters();
    let _final_metrics = handle.shutdown();

    let mut t = TextTable::new(["phase", "requests", "wall s", "req/s", "p50 ms", "p99 ms"]);
    t.row([
        "sequential".to_string(),
        sequential.to_string(),
        f4(seq_wall.as_secs_f64()),
        f4(seq_rps),
        f4(p50),
        f4(p99),
    ]);
    t.row([
        format!("concurrent x{CONCURRENT_CONNS}"),
        conc_total.to_string(),
        f4(conc_wall.as_secs_f64()),
        f4(conc_rps),
        "-".to_string(),
        "-".to_string(),
    ]);
    t.print();
    println!(
        "labeled {} / outlier {} / rejected {} / shed {}",
        counters.labeled, counters.outlier, counters.rejected, counters.shed
    );

    emit_bench_line(
        &opts,
        n,
        sequential,
        conc_total,
        seq_wall + conc_wall,
        p50,
        p99,
        seq_rps,
        conc_rps,
        counters.labeled,
        counters.outlier,
    );
}

/// Appends the `rock-serve-bench/v1` NDJSON line to `--metrics`.
#[allow(clippy::too_many_arguments)] // one flat measurement record
fn emit_bench_line(
    opts: &ExpOptions,
    n: usize,
    sequential: usize,
    concurrent: usize,
    wall: Duration,
    p50_ms: f64,
    p99_ms: f64,
    seq_rps: f64,
    conc_rps: f64,
    labeled: u64,
    outlier: u64,
) {
    let Some(path) = &opts.metrics else {
        return;
    };
    let mut obj = JsonObj::new(false, 0);
    obj.str("schema", "rock-serve-bench/v1")
        .str("experiment", "exp_serve")
        .num_u64("seed", opts.seed)
        .num_u64("n", n as u64)
        .num_u64("sequential_requests", sequential as u64)
        .num_u64("concurrent_requests", concurrent as u64)
        .num_f64("wall_secs", wall.as_secs_f64())
        .num_f64("latency_p50_ms", p50_ms)
        .num_f64("latency_p99_ms", p99_ms)
        .num_f64("sequential_rps", seq_rps)
        .num_f64("concurrent_rps", conc_rps)
        .num_u64("labeled", labeled)
        .num_u64("outlier", outlier);
    let line = obj.end();
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("open metrics file");
    writeln!(file, "{line}").expect("write metrics line");
    println!("bench line appended to {}", path.display());
}

/// One keep-alive loopback client.
struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        stream.set_nodelay(true).expect("nodelay");
        Client { stream }
    }

    fn label(&mut self, body: &str) {
        let raw = format!(
            "POST /label HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        self.stream.write_all(raw.as_bytes()).expect("send");
        let response = self.read_response();
        assert!(
            response.starts_with("HTTP/1.1 200"),
            "expected 200, got {response:?}"
        );
    }

    /// Reads one HTTP response using its `Content-Length` framing.
    fn read_response(&mut self) -> String {
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            let got = self.stream.read(&mut byte).expect("read");
            assert_eq!(got, 1, "connection closed mid-response");
            head.push(byte[0]);
        }
        let text = String::from_utf8(head.clone()).expect("utf8 head");
        let len: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("content-length")
            .trim()
            .parse()
            .expect("length");
        let mut body = vec![0u8; len];
        self.stream.read_exact(&mut body).expect("body");
        head.extend_from_slice(&body);
        String::from_utf8(head).expect("utf8 body")
    }
}
