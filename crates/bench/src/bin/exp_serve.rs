//! E-serve — online labeling latency, throughput and hot-reload safety
//! over loopback HTTP.
//!
//! Fits ROCK on a mushroom-like table, captures the model as a
//! `rock-model/v1` snapshot, serves it with an in-process `rock-serve`
//! registry, then replays the training points as labeling queries in
//! four phases:
//!
//! * a **sequential** phase over one keep-alive connection measures
//!   per-request latency — recorded into the log2-bucketed
//!   `LatencyHistogram` of `rock-trace/v1`, reported as its p50 / p99,
//! * a **concurrent** phase (4 connections, one point per request)
//!   measures aggregate request throughput,
//! * a **batched** phase (4 connections, 64-line NDJSON bodies)
//!   measures point throughput through the per-model group-commit
//!   batcher — the headline serving-throughput number,
//! * a **reload soak**: the same sustained labeling load while an admin
//!   thread hot-swaps the default model back and forth between two
//!   *different* fits. Every response is checked against the
//!   `X-Rock-Model-Fingerprint` header it carries: the label must be
//!   exactly what the claimed model produces for that probe, so a
//!   response served by a half-swapped or mixed model is detected, not
//!   averaged away. The soak reports `soak_wrong_model` and
//!   `soak_dropped`, both locked to **0** in the committed baseline.
//!
//! `--metrics <FILE>` appends one `rock-serve-bench/v2` NDJSON line
//! (this is the line committed as `results/BENCH_serve.json`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rock_bench::cli::ExpOptions;
use rock_bench::table::{banner, f4, TextTable};
use rock_core::cast::u64_to_f64;
use rock_core::prelude::*;
use rock_core::snapshot::{ModelSnapshot, OutlierPolicy, SimilarityKind};
use rock_core::telemetry::json::JsonObj;
use rock_core::telemetry::trace::LatencyHistogram;
use rock_datasets::synthetic::MushroomModel;
use rock_serve::server::{ServeConfig, Server, ServerHandle};

const THETA: f64 = 0.8;
/// The alternate fit the soak swaps in: a looser threshold draws a
/// different representative set, so the two models label differently.
const THETA_ALT: f64 = 0.6;
const K: usize = 6;
const CONCURRENT_CONNS: usize = 4;
const BATCH_LINES: usize = 64;
const SOAK_CONNS: usize = 4;

/// Fits ROCK at `theta` and captures the labeling model.
fn fit_snapshot(data: &TransactionSet, theta: f64, seed: u64) -> ModelSnapshot {
    let model = RockBuilder::new(K, theta)
        .seed(seed)
        .build()
        .fit(data)
        .expect("fit");
    ModelSnapshot::from_model(
        data,
        &model,
        theta,
        MarketBasket.f(theta),
        SimilarityKind::Jaccard,
        OutlierPolicy::Mark,
        &LabelingConfig::default(),
        seed,
    )
    .expect("snapshot")
}

fn main() {
    let opts = ExpOptions::from_env();
    banner("E-serve: rock-serve loopback labeling latency, throughput, hot-reload soak");

    let n = opts.scaled(2000, 300);
    let (table, _, _) = MushroomModel::scaled(n, K).seed(opts.seed).generate();
    let data = table.to_transactions();
    println!("fit: mushroom-like n = {n}, k = {K}, theta = {THETA} (+ alternate {THETA_ALT})");
    let snapshot = fit_snapshot(&data, THETA, opts.seed);
    let alt = fit_snapshot(&data, THETA_ALT, opts.seed);
    println!(
        "snapshot: {} clusters, {} representatives; alternate: {} clusters, {} representatives",
        snapshot.num_clusters(),
        snapshot.representatives().total(),
        alt.num_clusters(),
        alt.representatives().total(),
    );
    assert_ne!(
        snapshot.fingerprint(),
        alt.fingerprint(),
        "the soak needs two distinguishable models"
    );

    let bodies: Vec<String> = data
        .transactions()
        .iter()
        .map(|t| {
            let items: Vec<String> = t.items().iter().map(u32::to_string).collect();
            format!("{{\"items\":[{}]}}", items.join(","))
        })
        .collect();

    // A probe whose label differs between the two fits: the witness
    // that tells us which model actually answered a soak request.
    let probe_idx = data
        .transactions()
        .iter()
        .position(|t| snapshot.label(t) != alt.label(t))
        .expect("theta 0.8 and 0.6 fits must label some point differently");
    let probe_body = bodies[probe_idx].clone();
    let probe_main = snapshot.label(&data.transactions()[probe_idx]);
    let probe_alt = alt.label(&data.transactions()[probe_idx]);
    let fp_main = snapshot.fingerprint_hex();
    let fp_alt = alt.fingerprint_hex();
    let upload_main = snapshot.render();
    let upload_alt = alt.render();

    let config = ServeConfig {
        threads: SOAK_CONNS + 2,
        trace: opts.trace.clone(),
        ..ServeConfig::default()
    };
    let handle = Server::start(snapshot, config).expect("server start");

    // ── Sequential phase: latency percentiles ──────────────────────────
    // Latencies go into the same log2-bucketed histogram the tracer
    // flushes (`serve.request_ns`): mergeable, O(1) per record, and the
    // reported p50/p99 are the bucket-bound estimates of rock-trace/v1.
    let sequential = opts.scaled(4000, 400);
    let mut hist = LatencyHistogram::new();
    let mut client = Client::connect(&handle);
    let seq_start = Instant::now();
    for i in 0..sequential {
        let body = &bodies[i % bodies.len()];
        let t0 = Instant::now();
        client.label(body);
        hist.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    let seq_wall = seq_start.elapsed();
    drop(client);
    let ns_to_ms = |ns: u64| u64_to_f64(ns) / 1.0e6;
    let p50 = ns_to_ms(hist.percentile(0.50));
    let p99 = ns_to_ms(hist.percentile(0.99));
    let seq_rps = u64_to_f64(hist.count()) / seq_wall.as_secs_f64();

    // ── Concurrent phase: aggregate request throughput ─────────────────
    let per_conn = opts.scaled(2000, 200);
    let conc_start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CONCURRENT_CONNS {
            let bodies = &bodies;
            let handle = &handle;
            scope.spawn(move || {
                let mut client = Client::connect(handle);
                for i in 0..per_conn {
                    client.label(&bodies[(c + i * CONCURRENT_CONNS) % bodies.len()]);
                }
            });
        }
    });
    let conc_wall = conc_start.elapsed();
    let conc_total = CONCURRENT_CONNS * per_conn;
    let conc_rps = conc_total as f64 / conc_wall.as_secs_f64();

    // ── Batched phase: NDJSON bodies through the group-commit batcher ──
    let batches_per_conn = opts.scaled(32, 4);
    let batch_start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CONCURRENT_CONNS {
            let bodies = &bodies;
            let handle = &handle;
            scope.spawn(move || {
                let mut client = Client::connect(handle);
                for b in 0..batches_per_conn {
                    let mut body = String::new();
                    for i in 0..BATCH_LINES {
                        let idx = (c + (b * BATCH_LINES + i) * CONCURRENT_CONNS) % bodies.len();
                        body.push_str(&bodies[idx]);
                        body.push('\n');
                    }
                    let resp = client.post("/label", &body);
                    assert!(resp.starts_with("HTTP/1.1 200"), "{resp:?}");
                }
            });
        }
    });
    let batch_wall = batch_start.elapsed();
    let batched_requests = CONCURRENT_CONNS * batches_per_conn;
    let batched_points = batched_requests * BATCH_LINES;
    let batched_pps = batched_points as f64 / batch_wall.as_secs_f64();

    // ── Reload soak: sustained labels under periodic hot swaps ─────────
    let soak_per_conn = opts.scaled(500, 50);
    let soak_swaps = opts.scaled(40, 8);
    let mut soak_wrong_model = 0u64;
    let mut soak_dropped = 0u64;
    let swapping = AtomicBool::new(true);
    let soak_start = Instant::now();
    std::thread::scope(|scope| {
        let swapper = {
            let handle = &handle;
            let swapping = &swapping;
            let (upload_main, upload_alt) = (&upload_main, &upload_alt);
            scope.spawn(move || {
                let mut client = Client::connect(handle);
                for s in 0..soak_swaps {
                    let body = if s % 2 == 0 { upload_alt } else { upload_main };
                    let resp = client.post("/admin/models/default", body);
                    assert!(resp.starts_with("HTTP/1.1 200"), "swap {s}: {resp:?}");
                    std::thread::sleep(Duration::from_millis(2));
                }
                swapping.store(false, Ordering::Release);
            })
        };
        let mut checkers = Vec::new();
        for _ in 0..SOAK_CONNS {
            let handle = &handle;
            let probe_body = &probe_body;
            let (fp_main, fp_alt) = (&fp_main, &fp_alt);
            checkers.push(scope.spawn(move || {
                let mut client = Client::connect(handle);
                let mut wrong = 0u64;
                let mut dropped = 0u64;
                for _ in 0..soak_per_conn {
                    let resp = client.post("/label", probe_body);
                    if !resp.starts_with("HTTP/1.1 200") {
                        dropped += 1;
                        continue;
                    }
                    let fp = resp
                        .lines()
                        .take_while(|l| !l.trim_end().is_empty())
                        .find_map(|l| l.strip_prefix("X-Rock-Model-Fingerprint: "))
                        .map(str::trim_end);
                    let cluster = resp
                        .split("\r\n\r\n")
                        .nth(1)
                        .map(str::trim)
                        .unwrap_or_default();
                    let expected = match fp {
                        Some(f) if f == fp_main => render_label(probe_main),
                        Some(f) if f == fp_alt => render_label(probe_alt),
                        _ => {
                            wrong += 1;
                            continue;
                        }
                    };
                    if cluster != expected {
                        wrong += 1;
                    }
                }
                (wrong, dropped)
            }));
        }
        swapper.join().expect("swapper");
        for checker in checkers {
            let (wrong, dropped) = checker.join().expect("checker");
            soak_wrong_model += wrong;
            soak_dropped += dropped;
        }
    });
    let soak_wall = soak_start.elapsed();
    let soak_requests = SOAK_CONNS * soak_per_conn;
    let soak_rps = soak_requests as f64 / soak_wall.as_secs_f64();

    let counters = handle.counters();
    let _final_metrics = handle.shutdown();

    let mut t = TextTable::new(["phase", "requests", "points", "wall s", "pts/s"]);
    t.row([
        "sequential".to_string(),
        sequential.to_string(),
        sequential.to_string(),
        f4(seq_wall.as_secs_f64()),
        f4(seq_rps),
    ]);
    t.row([
        format!("concurrent x{CONCURRENT_CONNS}"),
        conc_total.to_string(),
        conc_total.to_string(),
        f4(conc_wall.as_secs_f64()),
        f4(conc_rps),
    ]);
    t.row([
        format!("batched x{CONCURRENT_CONNS} ({BATCH_LINES}/req)"),
        batched_requests.to_string(),
        batched_points.to_string(),
        f4(batch_wall.as_secs_f64()),
        f4(batched_pps),
    ]);
    t.row([
        format!("reload soak ({soak_swaps} swaps)"),
        soak_requests.to_string(),
        soak_requests.to_string(),
        f4(soak_wall.as_secs_f64()),
        f4(soak_rps),
    ]);
    t.print();
    println!("sequential latency: p50 {} ms, p99 {} ms", f4(p50), f4(p99));
    println!(
        "batched vs concurrent speedup: {:.2}x",
        batched_pps / conc_rps
    );
    println!(
        "soak: wrong-model {} / dropped {} (both must be 0)",
        soak_wrong_model, soak_dropped
    );
    println!(
        "labeled {} / outlier {} / rejected {} / shed {}",
        counters.labeled, counters.outlier, counters.rejected, counters.shed
    );
    assert_eq!(
        soak_wrong_model, 0,
        "a response was labeled by a model other than its header claims"
    );
    assert_eq!(soak_dropped, 0, "a soak response was dropped");

    if let Some(path) = &opts.metrics {
        let wall = seq_wall + conc_wall + batch_wall + soak_wall;
        let mut obj = JsonObj::new(false, 0);
        obj.str("schema", "rock-serve-bench/v2")
            .str("experiment", "exp_serve")
            .num_u64("seed", opts.seed)
            .num_u64("n", n as u64)
            .num_u64("sequential_requests", sequential as u64)
            .num_u64("concurrent_requests", conc_total as u64)
            .num_u64("batched_requests", batched_requests as u64)
            .num_u64("batched_points", batched_points as u64)
            .num_u64("soak_requests", soak_requests as u64)
            .num_u64("soak_swaps", soak_swaps as u64)
            .num_u64("soak_wrong_model", soak_wrong_model)
            .num_u64("soak_dropped", soak_dropped)
            .num_f64("wall_secs", wall.as_secs_f64())
            .num_f64("latency_p50_ms", p50)
            .num_f64("latency_p99_ms", p99)
            .num_f64("sequential_rps", seq_rps)
            .num_f64("concurrent_rps", conc_rps)
            .num_f64("batched_pps", batched_pps)
            .num_u64("labeled", counters.labeled)
            .num_u64("outlier", counters.outlier);
        let line = obj.end();
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("open metrics file");
        writeln!(file, "{line}").expect("write metrics line");
        println!("bench line appended to {}", path.display());
    }
}

/// The exact response body `/label` renders for one labeled point.
fn render_label(label: Option<usize>) -> String {
    match label {
        Some(c) => format!("{{\"cluster\":{c}}}"),
        None => "{\"cluster\":null}".to_string(),
    }
}

/// One keep-alive loopback client.
struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        stream.set_nodelay(true).expect("nodelay");
        Client { stream }
    }

    fn label(&mut self, body: &str) {
        let response = self.post("/label", body);
        assert!(
            response.starts_with("HTTP/1.1 200"),
            "expected 200, got {response:?}"
        );
    }

    /// Sends `body` to `path`, returns the full response text.
    fn post(&mut self, path: &str, body: &str) -> String {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        self.stream.write_all(raw.as_bytes()).expect("send");
        self.read_response()
    }

    /// Reads one HTTP response using its `Content-Length` framing.
    fn read_response(&mut self) -> String {
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            let got = self.stream.read(&mut byte).expect("read");
            assert_eq!(got, 1, "connection closed mid-response");
            head.push(byte[0]);
        }
        let text = String::from_utf8(head.clone()).expect("utf8 head");
        let len: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("content-length")
            .trim()
            .parse()
            .expect("length");
        let mut body = vec![0u8; len];
        self.stream.read_exact(&mut body).expect("body");
        head.extend_from_slice(&body);
        String::from_utf8(head).expect("utf8 body")
    }
}
