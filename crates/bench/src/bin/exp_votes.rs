//! E1 — Congressional Votes (paper §5: the two cluster-composition tables).
//!
//! The paper reports that on the 1984 Congressional Voting Records data
//! the *traditional* centroid-based hierarchical algorithm produces two
//! substantially mixed clusters, while ROCK (θ = 0.73) recovers two
//! clusters that are each overwhelmingly one party.
//!
//! Offline we run on the calibrated votes-like generator (see `DESIGN.md`,
//! *Substitutions*) in its noisy regime; the synthetic party-line
//! probability shifts the useful θ down to ~0.35 (the real data is more
//! polarized — `exp_theta` sweeps this explicitly). The *shape* under
//! test: ROCK's clusters are near-pure, the traditional algorithm's are
//! visibly mixed.

use rock_baselines::{traditional, KModes, Linkage};
use rock_bench::cli::ExpOptions;
use rock_bench::table::{banner, f4, pm, TextTable};
use rock_core::metrics::{cluster_breakdown, matched_accuracy, mean_std, purity};
use rock_core::prelude::*;
use rock_core::telemetry::time_it;
use rock_datasets::synthetic::{Party, VotesModel};

const THETA: f64 = 0.35;

/// `(rock predictions, traditional predictions, truth)` of the last epoch.
type LastEpoch = (Vec<Option<u32>>, Vec<Option<u32>>, Vec<usize>);

fn main() {
    let opts = ExpOptions::from_env();
    banner("E1: Congressional Votes — ROCK vs traditional hierarchical");
    println!(
        "votes-like synthetic data (435 members, 16 issues), theta = {THETA}, k = 2, {} epochs",
        opts.epochs
    );

    let mut rock_acc = Vec::new();
    let mut trad_acc = Vec::new();
    let mut kmodes_acc = Vec::new();
    let mut last: Option<LastEpoch> = None;

    for e in 0..opts.epochs {
        // Harder-than-default regime: weaker party-line voting and more
        // bipartisan issues, the setting where local (distance-only)
        // merging starts to fail while links still separate the parties.
        let model = VotesModel {
            democrats: opts.scaled(267, 30),
            republicans: opts.scaled(168, 20),
            partisan_issues: 10,
            party_line: 0.78,
            missing: 0.08,
            ..VotesModel::default()
        }
        .seed(opts.seed + e as u64);
        let (table, parties) = model.generate();
        let truth: Vec<usize> = parties
            .iter()
            .map(|p| usize::from(*p == Party::Republican))
            .collect();
        let data = table.to_transactions();

        // ROCK: θ-neighbors on Jaccard over (attr, value) items, k = 2.
        let observer = Observer::new();
        let (rock, rock_wall) = time_it(|| {
            RockBuilder::new(2, THETA)
                .seed(opts.seed + e as u64)
                .build()
                .fit_observed(&data, &observer)
        });
        let rock = rock.expect("rock fit");
        opts.emit_metrics(&Metrics::collect(
            &observer,
            RunInfo {
                experiment: "exp_votes".into(),
                n: data.len(),
                k: 2,
                theta: THETA,
                seed: opts.seed + e as u64,
                sample_size: rock.stats().sample_size,
                clusters: rock.num_clusters(),
                outliers: rock.outliers().len(),
            },
            rock_wall,
        ));
        let rock_pred: Vec<Option<u32>> =
            rock.assignments().iter().map(|a| a.map(|c| c.0)).collect();
        rock_acc.push(matched_accuracy(&rock_pred, &truth).expect("metrics"));

        // Traditional: centroid-based hierarchical on one-hot Euclidean.
        let trad = traditional(&data, 2, Linkage::Centroid).expect("traditional fit");
        let trad_pred = trad.as_predictions();
        trad_acc.push(matched_accuracy(&trad_pred, &truth).expect("metrics"));

        // k-modes baseline.
        let km = KModes::new(2)
            .seed(opts.seed + e as u64)
            .fit(&table)
            .expect("kmodes fit");
        kmodes_acc.push(matched_accuracy(&km.as_predictions(), &truth).expect("metrics"));

        last = Some((rock_pred, trad_pred, truth));
    }

    let (rock_pred, trad_pred, truth) = last.expect("at least one epoch");

    banner("Cluster composition — traditional hierarchical (last epoch)");
    print_composition(&trad_pred, &truth);
    banner("Cluster composition — ROCK (last epoch)");
    print_composition(&rock_pred, &truth);

    banner("Accuracy over epochs (optimal cluster<->party matching)");
    let mut t = TextTable::new(["algorithm", "accuracy", "purity(last)"]);
    let (m, s) = mean_std(&rock_acc);
    t.row(["ROCK", &pm(m, s), &f4(purity(&rock_pred, &truth).unwrap())]);
    let (m, s) = mean_std(&trad_acc);
    t.row([
        "traditional (centroid)",
        &pm(m, s),
        &f4(purity(&trad_pred, &truth).unwrap()),
    ]);
    let (m, s) = mean_std(&kmodes_acc);
    t.row(["k-modes", &pm(m, s), ""]);
    t.print();
}

fn print_composition(pred: &[Option<u32>], truth: &[usize]) {
    let rows = cluster_breakdown(pred, truth).expect("breakdown");
    let mut t = TextTable::new(["cluster", "size", "democrats", "republicans", "purity"]);
    for (i, (size, classes)) in rows.iter().enumerate() {
        let dem = classes.first().copied().unwrap_or(0);
        let rep = classes.get(1).copied().unwrap_or(0);
        let p = dem.max(rep) as f64 / (*size as f64).max(1.0);
        t.row([
            format!("C{i}"),
            size.to_string(),
            dem.to_string(),
            rep.to_string(),
            f4(p),
        ]);
    }
    let outliers = pred.iter().filter(|p| p.is_none()).count();
    t.print();
    if outliers > 0 {
        println!("(outliers: {outliers})");
    }
}
