//! E12 — inverted-index neighbor join vs brute force (DESIGN.md §17).
//!
//! Benchmarks the neighbor phase alone — ROCK's `O(n²)` hot spot — on
//! the mushroom-like generator: one brute-force reference per size (the
//! oracle and the speedup denominator), then the indexed join at 1, 2,
//! 4 and 8 workers. Every join run is checked row by row against the
//! oracle: the filters only narrow the candidate set and survivors are
//! accepted by the same counts predicate, so the graph must be
//! byte-identical — the only thing allowed to change is the wall clock
//! and how few similarity evaluations get there.

use rock_bench::cli::ExpOptions;
use rock_bench::table::{banner, TextTable};
use rock_core::guard::Guard;
use rock_core::neighbors::NeighborGraph;
use rock_core::prelude::*;
use rock_core::telemetry::trace::LatencyHistogram;
use rock_core::telemetry::{format_secs as secs, time_it, Metrics, Observer, RunInfo};

use rock_datasets::synthetic::MushroomModel;

const THETA: f64 = 0.73;
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Worker count of the brute-force reference runs: the strongest
/// baseline the join is compared against, not a handicapped one.
const BRUTE_THREADS: usize = 8;

fn run_info(experiment: String, n: usize, seed: u64) -> RunInfo {
    RunInfo {
        experiment,
        n,
        k: 0,
        theta: THETA,
        seed,
        sample_size: n,
        clusters: 0,
        outliers: 0,
    }
}

fn main() {
    let opts = ExpOptions::from_env();
    banner("E12: neighbor join vs brute force (mushroom-like)");

    let sizes = [
        opts.scaled(1000, 256),
        opts.scaled(5000, 256),
        opts.scaled(20_000, 256),
    ];
    let max_n = sizes.iter().copied().max().unwrap_or(256);
    let (table, _, _) = MushroomModel::scaled(max_n, 21).seed(opts.seed).generate();
    let data = table.to_transactions();

    let mut t = TextTable::new([
        "n",
        "threads",
        "kernel",
        "p50",
        "p99",
        "sim_evals",
        "candidates",
        "edges",
        "vs brute",
    ]);
    for &n in &sizes {
        let n = n.min(data.len());
        let sample = data.subset(&(0..n).collect::<Vec<_>>());

        // Brute-force reference: one run per size (it is the expensive
        // side of the comparison), measured with the same phase span so
        // its metrics line is shaped like every other cell.
        let brute_obs = Observer::new();
        let span = brute_obs.phase(Phase::Neighbors);
        let (oracle, brute_wall) = time_it(|| {
            NeighborGraph::compute_brute_force(&sample, &Jaccard, THETA, BRUTE_THREADS, &brute_obs)
                .expect("brute-force reference")
        });
        span.finish();
        let brute_metrics = Metrics::collect(
            &brute_obs,
            run_info(format!("exp_neighbors[n={n},brute]"), n, opts.seed),
            brute_wall,
        );
        t.row([
            n.to_string(),
            BRUTE_THREADS.to_string(),
            "brute".to_string(),
            secs(brute_wall),
            secs(brute_wall),
            brute_metrics.counters.similarity_comparisons.to_string(),
            "-".to_string(),
            brute_metrics.counters.neighbor_edges.to_string(),
            "1.00x".to_string(),
        ]);
        opts.emit_metrics(&brute_metrics);

        for &threads in &THREADS {
            // Every epoch's wall time goes into a log2-bucketed
            // LatencyHistogram; the reported numbers are its p50/p99, and
            // the median epoch's metrics feed the CI regression gate.
            let mut hist = LatencyHistogram::new();
            let mut epochs: Vec<(std::time::Duration, Metrics)> = Vec::new();
            for _ in 0..opts.epochs {
                let observer = Observer::new();
                let span = observer.phase(Phase::Neighbors);
                let ((graph, trip), wall) = time_it(|| {
                    NeighborGraph::compute_strategy(
                        &sample,
                        &Jaccard,
                        THETA,
                        threads,
                        &observer,
                        &Guard::unlimited(),
                        JoinStrategy::Index,
                    )
                    .expect("indexed join")
                });
                span.finish();
                assert!(trip.is_none(), "unlimited guard must not trip");
                for i in 0..n {
                    assert_eq!(
                        graph.neighbors(i),
                        oracle.neighbors(i),
                        "join diverged from brute force at n={n}, threads={threads}, row {i}"
                    );
                }
                let metrics = Metrics::collect(
                    &observer,
                    run_info(
                        format!("exp_neighbors[n={n},threads={threads}]"),
                        n,
                        opts.seed,
                    ),
                    wall,
                );
                hist.record(u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX));
                epochs.push((wall, metrics));
            }
            epochs.sort_by_key(|(wall, _)| *wall);
            let (wall, metrics) = epochs.swap_remove(epochs.len() / 2);
            let p50 = std::time::Duration::from_nanos(hist.percentile(0.50));
            let p99 = std::time::Duration::from_nanos(hist.percentile(0.99));
            t.row([
                n.to_string(),
                threads.to_string(),
                "index".to_string(),
                secs(p50),
                secs(p99),
                metrics.counters.similarity_comparisons.to_string(),
                metrics.counters.neighbor_candidates.to_string(),
                metrics.counters.neighbor_edges.to_string(),
                format!(
                    "{:.2}x",
                    brute_wall.as_secs_f64() / wall.as_secs_f64().max(1e-9)
                ),
            ]);
            opts.emit_metrics(&metrics);
        }
    }
    t.print();
    println!(
        "\n(Graphs are byte-identical to the brute-force oracle by\n\
         construction — checked row by row every epoch; only the wall\n\
         clock and the similarity-evaluation count may differ.)"
    );
}
