//! Performance-regression gate over committed telemetry baselines.
//!
//! Compares a freshly generated rock-metrics/v1 NDJSON file against the
//! committed baseline under `results/` line by line (experiment binaries
//! emit lines in a deterministic order, so line `i` of the fresh file is
//! the same run as line `i` of the baseline). Every leaf metric is
//! checked with a per-group policy:
//!
//! - `wall_secs.*` — banded: the fresh value must lie within
//!   `± max(tolerance × baseline, floor)` of the baseline. The floor
//!   exempts millisecond-scale phases where scheduler noise dominates.
//! - `memory_bytes.*` — banded with the same relative tolerance and a
//!   byte floor: the estimates include `HashMap` capacities, which grow
//!   under a per-process random hash seed, so the high-water figures
//!   wobble a little between identical runs.
//! - `*_rps` / `*_pps` (requests/points per second) — one-sided lower
//!   bound: the fresh throughput may fall at most `tolerance` below the
//!   baseline; being faster is never a finding. This is how the
//!   serving-throughput floor is locked in.
//! - `*_ms` (latency percentiles) — one-sided upper bound with an
//!   absolute millisecond floor: the log2-bucketed histogram quantizes
//!   estimates, so one bucket step on a sub-millisecond percentile is
//!   scheduler noise, not a regression. Being faster is never a
//!   finding.
//! - everything else (`counters.*`, `run.*`, schema, experiment,
//!   degradation) — exact: the pipeline is deterministic, so any drift
//!   in these is a real behavior change, not noise.
//!
//! Findings are printed one per line as `file:line:metric: message` so CI
//! logs are grep-able and clickable. Exit status: 0 when everything is
//! within tolerance, 1 on findings, 2 on usage or I/O errors.
//!
//! ```text
//! bench_check --baseline results/BENCH_links.json --fresh target/bench/BENCH_links.json
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;

use rock_core::telemetry::json::Json;

/// Relative tolerance for banded metrics (fraction of the baseline).
const DEFAULT_TOLERANCE: f64 = 0.25;
/// Absolute wall-clock floor in seconds; bands never shrink below this.
const DEFAULT_FLOOR_SECS: f64 = 0.075;
/// Absolute memory floor in bytes (1 MiB): covers hash-map capacity
/// jumps on structures too small for the relative band to matter.
const DEFAULT_FLOOR_BYTES: f64 = 1_048_576.0;
/// Absolute latency floor in milliseconds: one log2-histogram bucket on
/// a sub-millisecond percentile doubles the estimate, so sub-floor
/// jitter is exempted from the upper bound.
const DEFAULT_FLOOR_MS: f64 = 1.0;

struct Options {
    baseline: String,
    fresh: String,
    tolerance: f64,
    floor: f64,
    mem_floor: f64,
    ms_floor: f64,
}

fn usage() -> String {
    "usage: bench_check --baseline <FILE> --fresh <FILE> \
     [--tolerance <frac>] [--floor <secs>] [--mem-floor <bytes>] \
     [--ms-floor <ms>]"
        .to_owned()
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
    let mut baseline = None;
    let mut fresh = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut floor = DEFAULT_FLOOR_SECS;
    let mut mem_floor = DEFAULT_FLOOR_BYTES;
    let mut ms_floor = DEFAULT_FLOOR_MS;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let non_negative = |name: &str, raw: String| -> Result<f64, String> {
            let v: f64 = raw.parse().map_err(|e| format!("{name}: {e}"))?;
            if v >= 0.0 && v.is_finite() {
                Ok(v)
            } else {
                Err(format!("{name} must be non-negative and finite"))
            }
        };
        match flag.as_str() {
            "--baseline" => baseline = Some(take("--baseline")?),
            "--fresh" => fresh = Some(take("--fresh")?),
            "--tolerance" => tolerance = non_negative("--tolerance", take("--tolerance")?)?,
            "--floor" => floor = non_negative("--floor", take("--floor")?)?,
            "--mem-floor" => mem_floor = non_negative("--mem-floor", take("--mem-floor")?)?,
            "--ms-floor" => ms_floor = non_negative("--ms-floor", take("--ms-floor")?)?,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(Options {
        baseline: baseline.ok_or_else(usage)?,
        fresh: fresh.ok_or_else(usage)?,
        tolerance,
        floor,
        mem_floor,
        ms_floor,
    })
}

/// Throughput metrics get the one-sided lower-bound policy.
fn is_throughput(path: &str) -> bool {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    leaf.ends_with("_rps") || leaf.ends_with("_pps")
}

/// Latency metrics get the one-sided upper-bound policy.
fn is_latency_ms(path: &str) -> bool {
    path.rsplit('.').next().unwrap_or(path).ends_with("_ms")
}

/// One out-of-tolerance metric, formatted as `file:line:metric: message`.
#[derive(Debug, PartialEq)]
struct Finding {
    /// 1-based NDJSON line in the baseline file.
    line: usize,
    /// Dotted metric path, e.g. `wall_secs.links`.
    metric: String,
    message: String,
}

fn leaf_repr(v: &Json) -> String {
    match v {
        Json::Str(s) => format!("{s:?}"),
        Json::Num(x) => {
            let mut s = String::new();
            let _ = write!(s, "{x}");
            s
        }
        Json::Bool(b) => b.to_string(),
        Json::Null => "null".to_owned(),
        Json::Arr(items) => format!("[{} items]", items.len()),
        Json::Obj(fields) => format!("{{{} fields}}", fields.len()),
    }
}

/// Tolerance bands applied by [`compare_value`].
#[derive(Debug, Clone, Copy)]
struct Bands {
    /// Relative tolerance shared by the wall and memory bands.
    tolerance: f64,
    /// Absolute wall-clock floor, seconds.
    wall_floor: f64,
    /// Absolute memory floor, bytes.
    mem_floor: f64,
    /// Absolute latency floor, milliseconds.
    ms_floor: f64,
}

/// Recursively compares `fresh` against `base`, appending findings. Keys
/// under `wall_secs` and `memory_bytes` get the banded policy; everything
/// else must match exactly. Either side missing a key the other has is
/// itself a finding.
fn compare_value(
    path: &str,
    base: &Json,
    fresh: &Json,
    line: usize,
    bands: Bands,
    findings: &mut Vec<Finding>,
) {
    match (base, fresh) {
        (Json::Obj(b), Json::Obj(f)) => {
            for (key, bv) in b {
                let sub = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                match f.iter().find(|(k, _)| k == key) {
                    Some((_, fv)) => {
                        compare_value(&sub, bv, fv, line, bands, findings);
                    }
                    None => findings.push(Finding {
                        line,
                        metric: sub,
                        message: "present in baseline, missing from fresh run".to_owned(),
                    }),
                }
            }
            for (key, _) in f {
                if !b.iter().any(|(k, _)| k == key) {
                    let sub = if path.is_empty() {
                        key.clone()
                    } else {
                        format!("{path}.{key}")
                    };
                    findings.push(Finding {
                        line,
                        metric: sub,
                        message: "present in fresh run, missing from baseline".to_owned(),
                    });
                }
            }
        }
        (Json::Num(b), Json::Num(f)) if is_throughput(path) => {
            // Lower bound only: a faster run is an improvement, never a
            // finding; the committed baseline is the throughput floor.
            let band = bands.tolerance * b;
            if *f < b - band {
                let pct = if *b > 0.0 {
                    100.0 * (f - b) / b
                } else {
                    f64::NEG_INFINITY
                };
                findings.push(Finding {
                    line,
                    metric: path.to_owned(),
                    message: format!(
                        "throughput regression: {f:.2}/s vs baseline {b:.2}/s \
                         ({pct:+.1}%, floor {:.2}/s)",
                        b - band
                    ),
                });
            }
        }
        (Json::Num(b), Json::Num(f)) if is_latency_ms(path) => {
            // Upper bound only, with an absolute floor absorbing log2
            // bucket quantization on sub-millisecond percentiles.
            let band = (bands.tolerance * b).max(bands.ms_floor);
            if *f > b + band {
                findings.push(Finding {
                    line,
                    metric: path.to_owned(),
                    message: format!(
                        "latency regression: {f:.3}ms vs baseline {b:.3}ms \
                         (ceiling {:.3}ms)",
                        b + band
                    ),
                });
            }
        }
        (Json::Num(b), Json::Num(f))
            if path.starts_with("wall_secs") || path.starts_with("memory_bytes") =>
        {
            let (floor, unit) = if path.starts_with("wall_secs") {
                (bands.wall_floor, "s")
            } else {
                (bands.mem_floor, "B")
            };
            let band = (bands.tolerance * b).max(floor);
            let delta = f - b;
            if delta.abs() > band {
                let pct = if *b > 0.0 {
                    100.0 * delta / b
                } else {
                    f64::INFINITY
                };
                let direction = if delta > 0.0 { "regression" } else { "drift" };
                findings.push(Finding {
                    line,
                    metric: path.to_owned(),
                    message: format!(
                        "{direction}: {f:.6}{unit} vs baseline {b:.6}{unit} \
                         ({pct:+.1}%, band ±{band:.6}{unit})"
                    ),
                });
            }
        }
        _ => {
            // Exact policy: counters, memory, run identity, schema,
            // degradation blocks. Structural mismatches land here too.
            let matches = match (base, fresh) {
                (Json::Num(b), Json::Num(f)) => b == f,
                _ => base == fresh,
            };
            if !matches {
                findings.push(Finding {
                    line,
                    metric: path.to_owned(),
                    message: format!(
                        "expected {} (baseline), got {}",
                        leaf_repr(base),
                        leaf_repr(fresh)
                    ),
                });
            }
        }
    }
}

/// Pure comparison over two NDJSON documents; returns every finding.
fn compare_files(base_text: &str, fresh_text: &str, bands: Bands) -> Result<Vec<Finding>, String> {
    let base_lines: Vec<&str> = base_text.lines().filter(|l| !l.trim().is_empty()).collect();
    let fresh_lines: Vec<&str> = fresh_text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .collect();
    let mut findings = Vec::new();
    if base_lines.len() != fresh_lines.len() {
        findings.push(Finding {
            line: base_lines.len().min(fresh_lines.len()) + 1,
            metric: "lines".to_owned(),
            message: format!(
                "baseline has {} runs, fresh has {}",
                base_lines.len(),
                fresh_lines.len()
            ),
        });
    }
    for (i, (b, f)) in base_lines.iter().zip(&fresh_lines).enumerate() {
        let line = i + 1;
        let base = Json::parse(b).map_err(|e| format!("baseline line {line}: {e}"))?;
        let fresh = Json::parse(f).map_err(|e| format!("fresh line {line}: {e}"))?;
        compare_value("", &base, &fresh, line, bands, &mut findings);
    }
    Ok(findings)
}

fn run(opts: &Options) -> Result<Vec<Finding>, String> {
    let base_text = std::fs::read_to_string(&opts.baseline)
        .map_err(|e| format!("cannot read {}: {e}", opts.baseline))?;
    let fresh_text = std::fs::read_to_string(&opts.fresh)
        .map_err(|e| format!("cannot read {}: {e}", opts.fresh))?;
    let bands = Bands {
        tolerance: opts.tolerance,
        wall_floor: opts.floor,
        mem_floor: opts.mem_floor,
        ms_floor: opts.ms_floor,
    };
    compare_files(&base_text, &fresh_text, bands)
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(findings) if findings.is_empty() => {
            println!(
                "bench_check: {} within tolerance of {} (wall ±{:.0}% / {:.3}s floor; \
                 _rps/_pps ≥ floor, _ms ≤ ceiling, rest exact)",
                opts.fresh,
                opts.baseline,
                100.0 * opts.tolerance,
                opts.floor
            );
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{}:{}:{}: {}", opts.baseline, f.line, f.metric, f.message);
            }
            eprintln!(
                "bench_check: {} finding(s) comparing {} against {}",
                findings.len(),
                opts.fresh,
                opts.baseline
            );
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("bench_check: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = r#"{"schema":"rock-metrics/v1","experiment":"e[n=1]","run":{"n":10,"theta":0.5},"wall_secs":{"links":1.0,"total":2.0},"counters":{"link_entries":6},"memory_bytes":{"link_table":96}}"#;

    const TIGHT: Bands = Bands {
        tolerance: 0.25,
        wall_floor: 0.0,
        mem_floor: 0.0,
        ms_floor: 0.0,
    };

    fn edited(from: &str, to: &str) -> String {
        LINE.replace(from, to)
    }

    #[test]
    fn identical_files_pass() {
        let findings = compare_files(LINE, LINE, TIGHT).unwrap();
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn wall_within_band_passes() {
        let fresh = edited("\"links\":1.0", "\"links\":1.2");
        assert!(compare_files(LINE, &fresh, TIGHT).unwrap().is_empty());
    }

    #[test]
    fn wall_regression_beyond_band_fails() {
        let fresh = edited("\"links\":1.0", "\"links\":1.3");
        let findings = compare_files(LINE, &fresh, TIGHT).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].metric, "wall_secs.links");
        assert_eq!(findings[0].line, 1);
        assert!(findings[0].message.contains("regression"));
    }

    #[test]
    fn wall_floor_exempts_small_timings() {
        // 1.0 → 1.3 is a 30% regression but inside a 0.5s floor band.
        let fresh = edited("\"links\":1.0", "\"links\":1.3");
        let bands = Bands {
            wall_floor: 0.5,
            ..TIGHT
        };
        assert!(compare_files(LINE, &fresh, bands).unwrap().is_empty());
    }

    #[test]
    fn counters_must_match_exactly() {
        let fresh = edited("\"link_entries\":6", "\"link_entries\":7");
        let findings = compare_files(LINE, &fresh, TIGHT).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].metric, "counters.link_entries");
    }

    #[test]
    fn memory_is_banded_not_exact() {
        // +8 bytes on 96 is within the 25% band; +104 is not.
        let near = edited("\"link_table\":96", "\"link_table\":104");
        assert!(compare_files(LINE, &near, TIGHT).unwrap().is_empty());
        let far = edited("\"link_table\":96", "\"link_table\":200");
        let findings = compare_files(LINE, &far, TIGHT).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].metric, "memory_bytes.link_table");
        // The byte floor exempts even that jump.
        let bands = Bands {
            mem_floor: 1024.0,
            ..TIGHT
        };
        assert!(compare_files(LINE, &far, bands).unwrap().is_empty());
    }

    const SERVE_LINE: &str = r#"{"schema":"rock-serve-bench/v2","sequential_rps":8000.0,"batched_pps":30000.0,"latency_p99_ms":0.5}"#;

    fn serve_edited(from: &str, to: &str) -> String {
        SERVE_LINE.replace(from, to)
    }

    #[test]
    fn throughput_is_a_one_sided_lower_bound() {
        // Faster than baseline: never a finding, however large the gain.
        let faster = serve_edited("\"sequential_rps\":8000.0", "\"sequential_rps\":80000.0");
        assert!(compare_files(SERVE_LINE, &faster, TIGHT)
            .unwrap()
            .is_empty());
        // Within tolerance below: fine.
        let near = serve_edited("\"sequential_rps\":8000.0", "\"sequential_rps\":6500.0");
        assert!(compare_files(SERVE_LINE, &near, TIGHT).unwrap().is_empty());
        // Below the floor: finding, for both _rps and _pps suffixes.
        let slow = serve_edited("\"sequential_rps\":8000.0", "\"sequential_rps\":5000.0");
        let findings = compare_files(SERVE_LINE, &slow, TIGHT).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].metric, "sequential_rps");
        assert!(findings[0].message.contains("throughput regression"));
        let slow = serve_edited("\"batched_pps\":30000.0", "\"batched_pps\":10000.0");
        let findings = compare_files(SERVE_LINE, &slow, TIGHT).unwrap();
        assert_eq!(findings[0].metric, "batched_pps");
    }

    #[test]
    fn latency_is_a_one_sided_upper_bound_with_ms_floor() {
        // Faster: never a finding.
        let faster = serve_edited("\"latency_p99_ms\":0.5", "\"latency_p99_ms\":0.1");
        assert!(compare_files(SERVE_LINE, &faster, TIGHT)
            .unwrap()
            .is_empty());
        // Slower beyond tolerance: finding at zero floor…
        let slower = serve_edited("\"latency_p99_ms\":0.5", "\"latency_p99_ms\":1.0");
        let findings = compare_files(SERVE_LINE, &slower, TIGHT).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].metric, "latency_p99_ms");
        assert!(findings[0].message.contains("latency regression"));
        // …but exempted by the millisecond floor (bucket quantization).
        let bands = Bands {
            ms_floor: 1.0,
            ..TIGHT
        };
        assert!(compare_files(SERVE_LINE, &slower, bands)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn run_identity_must_match() {
        let fresh = edited("\"experiment\":\"e[n=1]\"", "\"experiment\":\"e[n=2]\"");
        let findings = compare_files(LINE, &fresh, TIGHT).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].metric, "experiment");
    }

    #[test]
    fn missing_and_extra_keys_are_findings() {
        let fresh = edited(
            "\"counters\":{\"link_entries\":6}",
            "\"counters\":{\"merges\":1}",
        );
        let findings = compare_files(LINE, &fresh, TIGHT).unwrap();
        let metrics: Vec<&str> = findings.iter().map(|f| f.metric.as_str()).collect();
        assert!(metrics.contains(&"counters.link_entries"));
        assert!(metrics.contains(&"counters.merges"));
    }

    #[test]
    fn degradation_block_appearing_is_a_finding() {
        let fresh = LINE.replace(
            "\"memory_bytes\":{\"link_table\":96}",
            "\"memory_bytes\":{\"link_table\":96},\"degradation\":{\"reason\":\"memory_budget\"}",
        );
        let findings = compare_files(LINE, &fresh, TIGHT).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].metric, "degradation");
    }

    #[test]
    fn line_count_mismatch_is_a_finding() {
        let two = format!("{LINE}\n{LINE}");
        let findings = compare_files(&two, LINE, TIGHT).unwrap();
        assert!(findings.iter().any(|f| f.metric == "lines"));
    }

    #[test]
    fn parse_errors_are_reported_not_panicked() {
        assert!(compare_files("{not json", LINE, TIGHT).is_err());
    }

    #[test]
    fn arg_parsing() {
        let ok = parse_args(
            [
                "--baseline",
                "a",
                "--fresh",
                "b",
                "--tolerance",
                "0.1",
                "--floor",
                "0.05",
                "--mem-floor",
                "4096",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(ok.baseline, "a");
        assert_eq!(ok.fresh, "b");
        assert!((ok.tolerance - 0.1).abs() < 1e-12);
        assert!((ok.floor - 0.05).abs() < 1e-12);
        assert!((ok.mem_floor - 4096.0).abs() < 1e-12);
        assert!(parse_args(["--baseline", "a"].iter().map(|s| s.to_string())).is_err());
        assert!(parse_args(["--tolerance", "-1"].iter().map(|s| s.to_string())).is_err());
        assert!(parse_args(["--bogus"].iter().map(|s| s.to_string())).is_err());
    }
}
