//! E0 — the paper's motivating market-basket example (§1–2).
//!
//! Two natural basket clusters over the item universes `{0..5}` and
//! `{5..10}`, plus a few "bridge" baskets containing items from both.
//! Pairwise-similarity merging (the local strategy) is fooled: a bridge
//! basket is similar to members of both clusters, and single-link
//! agglomeration chains straight through it. Links fix this because a
//! bridge pair has few *common* neighbors relative to a within-cluster
//! pair.

use rock_baselines::{similarity_only, Linkage};
use rock_bench::cli::ExpOptions;
use rock_bench::table::{banner, f4, TextTable};
use rock_core::metrics::matched_accuracy;
use rock_core::prelude::*;
use rock_datasets::synthetic::intro_example;

fn main() {
    let opts = ExpOptions::from_env();
    banner("E0: motivating example — links vs raw similarity");

    let mut t = TextTable::new([
        "bridges",
        "ROCK",
        "sim-only single-link",
        "sim-only average-link",
    ]);
    for bridges in [0usize, 2, 4] {
        let (data, truth) = intro_example(bridges);
        let rock = RockBuilder::new(2, 0.5)
            .neighbor_filter(NeighborFilter::disabled())
            .seed(opts.seed)
            .build()
            .fit(&data)
            .expect("rock fit");
        let rock_pred: Vec<Option<u32>> =
            rock.assignments().iter().map(|a| a.map(|c| c.0)).collect();
        let single = similarity_only(&data, 2, &Jaccard, Linkage::Single).expect("single");
        let average = similarity_only(&data, 2, &Jaccard, Linkage::Average).expect("average");
        t.row([
            bridges.to_string(),
            f4(matched_accuracy(&rock_pred, &truth).unwrap()),
            f4(matched_accuracy(&single.as_predictions(), &truth).unwrap()),
            f4(matched_accuracy(&average.as_predictions(), &truth).unwrap()),
        ]);
    }
    t.print();
    println!(
        "\n(20 genuine baskets: all 3-subsets of two 5-item universes; bridges\n\
         straddle both universes and count toward cluster 0 in the truth.)"
    );
}
