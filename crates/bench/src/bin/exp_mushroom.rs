//! E2 — Mushroom (paper §5: ROCK's 21-cluster table vs the traditional
//! algorithm's 20 mixed clusters).
//!
//! The paper runs ROCK with θ = 0.8 and k = 21 on all 8124 mushroom
//! records and finds clusters that are pure in edible/poisonous (all but
//! one), with sizes spanning 8 … 1728; the traditional centroid-based
//! algorithm at comparable k produces badly mixed clusters.
//!
//! Offline we run on the mushroom-like generator (21 planted species
//! groups, sizes 8 … 1828 summing to 8124; see `DESIGN.md`,
//! *Substitutions*). ROCK follows the paper's large-data paradigm:
//! cluster a random sample, then label the full dataset. The traditional
//! baseline gets the same sample (its `O(n²)` distance matrix cannot hold
//! 8124 points comfortably) and labels nothing — exactly the handicap the
//! paper describes for hierarchical methods.

use rock_baselines::{traditional, Linkage};
use rock_bench::cli::ExpOptions;
use rock_bench::table::{banner, f4, TextTable};
use rock_core::metrics::{cluster_breakdown, densify_labels, matched_accuracy, purity};
use rock_core::prelude::*;
use rock_core::telemetry::time_it;
use rock_datasets::synthetic::MushroomModel;

const THETA: f64 = 0.8;
const K: usize = 21;
const SAMPLE: usize = 2000;

fn main() {
    let opts = ExpOptions::from_env();
    banner("E2: Mushroom — ROCK (sample + label) vs traditional hierarchical");

    let model = if opts.scale < 1.0 {
        MushroomModel::scaled(opts.scaled(8124, 500), K).seed(opts.seed)
    } else {
        MushroomModel::default().seed(opts.seed)
    };
    let n = model.num_records();
    let sample = SAMPLE.min(n);
    println!("mushroom-like synthetic data: n = {n}, 22 attributes, 21 latent groups");
    println!("ROCK: theta = {THETA}, k = {K}, sample = {sample}, labeling the rest");

    let (mut table, classes, mut groups) = model.generate();
    let mut class_truth = densify_labels(&classes);

    // Debris: a few percent of uniform-random records, the outlier regime
    // paper §4.3 discusses. ROCK's neighbor filter / labeling discards
    // them; the traditional algorithm has no outlier concept and must
    // spend clusters on them, forcing genuine clusters to merge.
    let noise = n / 25;
    {
        let mut rng = seeded_rng(opts.seed ^ 0x6e6f_6973);
        let cards: Vec<usize> = table
            .schema()
            .iter()
            .map(|(_, a)| a.cardinality())
            .collect();
        for _ in 0..noise {
            let row: Vec<Option<u16>> = cards
                .iter()
                .map(|&c| Some(rng.gen_range(0..c.max(1)) as u16))
                .collect();
            table.push_coded(row).expect("noise row");
            class_truth.push(2); // its own throw-away class
            groups.push(K); // its own throw-away group
        }
    }
    println!("plus {noise} uniform-random debris records (paper §4.3 outlier regime)");
    let n = table.len();
    let data = table.to_transactions();

    // ── ROCK: sample, cluster, label ───────────────────────────────────
    let observer = Observer::new();
    let (rock, rock_wall) = time_it(|| {
        RockBuilder::new(K, THETA)
            .sample(SampleStrategy::Fixed(sample))
            .seed(opts.seed)
            .build()
            .fit_observed(&data, &observer)
    });
    let rock = rock.expect("rock fit");
    opts.emit_metrics(&Metrics::collect(
        &observer,
        RunInfo {
            experiment: "exp_mushroom".into(),
            n,
            k: K,
            theta: THETA,
            seed: opts.seed,
            sample_size: rock.stats().sample_size,
            clusters: rock.num_clusters(),
            outliers: rock.outliers().len(),
        },
        rock_wall,
    ));
    let rock_pred: Vec<Option<u32>> = rock.assignments().iter().map(|a| a.map(|c| c.0)).collect();

    banner("ROCK cluster table (full dataset after labeling)");
    print_mushroom_table(&rock_pred, &class_truth);
    let rock_purity = purity(&rock_pred, &class_truth).unwrap();
    let rock_group_acc = matched_accuracy(&rock_pred, &groups).unwrap();
    println!(
        "edible/poisonous purity = {}, latent-group accuracy = {}, clusters = {}, outliers = {}",
        f4(rock_purity),
        f4(rock_group_acc),
        rock.num_clusters(),
        rock.outliers().len()
    );

    // ── Traditional on the same-size sample ───────────────────────────
    let mut rng = seeded_rng(opts.seed);
    let idx = sample_indices(n, sample, &mut rng).expect("sample");
    let sub = data.subset(&idx);
    let sub_truth: Vec<usize> = idx.iter().map(|&i| class_truth[i]).collect();
    let sub_groups: Vec<usize> = idx.iter().map(|&i| groups[i]).collect();
    let trad = traditional(&sub, K, Linkage::Centroid).expect("traditional fit");
    let trad_pred = trad.as_predictions();

    banner("Traditional hierarchical cluster table (sample only)");
    print_mushroom_table(&trad_pred, &sub_truth);
    println!(
        "edible/poisonous purity = {}, latent-group accuracy = {} (on the sample)",
        f4(purity(&trad_pred, &sub_truth).unwrap()),
        f4(matched_accuracy(&trad_pred, &sub_groups).unwrap()),
    );

    banner("Summary");
    let mut t = TextTable::new([
        "algorithm",
        "class purity",
        "group accuracy",
        "pure clusters",
    ]);
    t.row([
        "ROCK".to_string(),
        f4(rock_purity),
        f4(rock_group_acc),
        format!(
            "{}/{}",
            count_pure(&rock_pred, &class_truth),
            rock.num_clusters()
        ),
    ]);
    t.row([
        "traditional (centroid)".to_string(),
        f4(purity(&trad_pred, &sub_truth).unwrap()),
        f4(matched_accuracy(&trad_pred, &sub_groups).unwrap()),
        format!(
            "{}/{}",
            count_pure(&trad_pred, &sub_truth),
            trad.clusters().len()
        ),
    ]);
    // The paper also evaluates the traditional algorithm with post-hoc
    // outlier removal (discard tiny clusters). It cannot help here: the
    // damage — genuine groups merged to free clusters for debris — is
    // already done.
    let pruned_pred = trad.prune_small(2);
    t.row([
        "traditional + prune<=2".to_string(),
        f4(purity(&pruned_pred, &sub_truth).unwrap()),
        f4(matched_accuracy(&pruned_pred, &sub_groups).unwrap()),
        format!(
            "{}/{}",
            count_pure(&pruned_pred, &sub_truth),
            cluster_breakdown(&pruned_pred, &sub_truth).unwrap().len()
        ),
    ]);
    t.print();
}

/// Prints the paper-style cluster table: cluster number, size, edible and
/// poisonous counts.
fn print_mushroom_table(pred: &[Option<u32>], truth: &[usize]) {
    let rows = cluster_breakdown(pred, truth).expect("breakdown");
    let mut t = TextTable::new(["cluster", "size", "edible", "poisonous", "debris", "pure"]);
    for (i, (size, classes)) in rows.iter().enumerate() {
        let e = classes.first().copied().unwrap_or(0);
        let p = classes.get(1).copied().unwrap_or(0);
        let d = classes.get(2).copied().unwrap_or(0);
        t.row([
            format!("C{i}"),
            size.to_string(),
            e.to_string(),
            p.to_string(),
            d.to_string(),
            if e == 0 || p == 0 { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.print();
    let outliers = pred.iter().filter(|p| p.is_none()).count();
    if outliers > 0 {
        println!("(outliers: {outliers})");
    }
}

fn count_pure(pred: &[Option<u32>], truth: &[usize]) -> usize {
    cluster_breakdown(pred, truth)
        .expect("breakdown")
        .iter()
        .filter(|(_, classes)| classes.iter().filter(|&&c| c > 0).count() <= 1)
        .count()
}
