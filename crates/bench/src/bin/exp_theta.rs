//! E7 — θ sensitivity.
//!
//! The paper tunes θ per dataset (0.73 for votes, 0.8 for mushroom) and
//! notes the choice matters: too low and everything is everyone's
//! neighbor, too high and the neighbor graph falls apart. This experiment
//! sweeps θ on the votes-like and mushroom-like generators and reports
//! accuracy and the number of clusters actually reachable.

use rock_bench::cli::ExpOptions;
use rock_bench::table::{banner, f4, TextTable};
use rock_core::metrics::matched_accuracy;
use rock_core::prelude::*;
use rock_datasets::synthetic::{MushroomModel, Party, VotesModel};

fn main() {
    let opts = ExpOptions::from_env();

    banner("E7: theta sweep — votes-like (noisy regime, k=2)");
    let model = VotesModel {
        democrats: opts.scaled(267, 30),
        republicans: opts.scaled(168, 20),
        partisan_issues: 10,
        party_line: 0.75,
        missing: 0.08,
        ..VotesModel::default()
    }
    .seed(opts.seed);
    let (table, parties) = model.generate();
    let truth: Vec<usize> = parties
        .iter()
        .map(|p| usize::from(*p == Party::Republican))
        .collect();
    let data = table.to_transactions();
    sweep(
        &data,
        &truth,
        2,
        &[0.25, 0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.60],
        opts.seed,
    );

    banner("E7: theta sweep — mushroom-like (k = #groups)");
    let groups = 8;
    let m = MushroomModel::scaled(opts.scaled(1600, 200), groups).seed(opts.seed);
    let (mtable, _classes, mgroups) = m.generate();
    let mdata = mtable.to_transactions();
    sweep(
        &mdata,
        &mgroups,
        groups,
        &[0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9],
        opts.seed,
    );
}

fn sweep(data: &TransactionSet, truth: &[usize], k: usize, thetas: &[f64], seed: u64) {
    let mut t = TextTable::new([
        "theta",
        "accuracy",
        "clusters",
        "outliers",
        "avg_degree",
        "reached_k",
    ]);
    for &theta in thetas {
        match RockBuilder::new(k, theta).seed(seed).build().fit(data) {
            Ok(model) => {
                let pred: Vec<Option<u32>> =
                    model.assignments().iter().map(|a| a.map(|c| c.0)).collect();
                let acc = matched_accuracy(&pred, truth).expect("metrics");
                t.row([
                    format!("{theta:.2}"),
                    f4(acc),
                    model.num_clusters().to_string(),
                    model.outliers().len().to_string(),
                    format!("{:.1}", model.stats().avg_degree),
                    model.stats().reached_k.to_string(),
                ]);
            }
            Err(e) => {
                t.row([format!("{theta:.2}"), format!("error: {e}")]);
            }
        }
    }
    t.print();
}
