//! E8 — connected-components shortcut vs full ROCK (follow-on ablation).
//!
//! The QROCK observation: when θ separates the clusters cleanly, the
//! connected components of the neighbor graph *are* the clusters, and the
//! link/merge machinery is unnecessary. This experiment quantifies when
//! that holds: on cleanly separated data the shortcut matches ROCK at a
//! fraction of the cost; as class separation drops (latent-class
//! concentration sweep) or bridges appear, components collapse into one
//! blob while links keep working.

use rock_bench::cli::ExpOptions;
use rock_bench::table::{banner, f4, TextTable};
use rock_core::metrics::matched_accuracy;
use rock_core::prelude::*;
use rock_core::telemetry::{format_secs as secs, time_it};
use rock_datasets::synthetic::{intro_example, LatentClassModel};

fn main() {
    let opts = ExpOptions::from_env();

    banner("E8a: concentration sweep — components vs ROCK (latent classes)");
    let mut t = TextTable::new([
        "concentration",
        "ROCK acc",
        "components acc",
        "components found",
        "ROCK time",
        "comp time",
    ]);
    let theta = 0.45;
    for &conc in &[0.95f64, 0.9, 0.85, 0.8, 0.75, 0.7] {
        let m = LatentClassModel::uniform(4, opts.scaled(150, 30), 16, 4)
            .concentration(conc)
            .seed(opts.seed);
        let (table, truth) = m.generate();
        let data = table.to_transactions();

        let (rock, rock_time) = time_it(|| {
            RockBuilder::new(4, theta)
                .seed(opts.seed)
                .build()
                .fit(&data)
                .expect("fit")
        });
        let rock_pred: Vec<Option<u32>> =
            rock.assignments().iter().map(|a| a.map(|c| c.0)).collect();

        let (comps, comp_time) = time_it(|| {
            let g = NeighborGraph::compute(&data, &Jaccard, theta, 0).expect("graph");
            connected_components(&g)
        });
        let mut comp_pred: Vec<Option<u32>> = vec![None; data.len()];
        for (c, members) in comps.iter().enumerate() {
            for &p in members {
                comp_pred[p as usize] = Some(c as u32);
            }
        }

        t.row([
            format!("{conc:.2}"),
            f4(matched_accuracy(&rock_pred, &truth).unwrap()),
            f4(matched_accuracy(&comp_pred, &truth).unwrap()),
            comps.len().to_string(),
            secs(rock_time),
            secs(comp_time),
        ]);
    }
    t.print();

    banner("E8b: bridges break the shortcut, links survive");
    let mut t = TextTable::new(["bridges", "ROCK acc", "components acc", "components found"]);
    // θ = 0.4 lets bridge baskets connect to both sides (their Jaccard to
    // genuine baskets is exactly 0.4), so the shortcut's failure mode is
    // visible: one bridge fuses the two components.
    for bridges in [0usize, 1, 2, 4] {
        let (data, truth) = intro_example(bridges);
        let rock = RockBuilder::new(2, 0.4)
            .neighbor_filter(NeighborFilter::disabled())
            .seed(opts.seed)
            .build()
            .fit(&data)
            .expect("fit");
        let rock_pred: Vec<Option<u32>> =
            rock.assignments().iter().map(|a| a.map(|c| c.0)).collect();
        let g = NeighborGraph::compute(&data, &Jaccard, 0.4, 1).expect("graph");
        let comps = connected_components(&g);
        let mut comp_pred: Vec<Option<u32>> = vec![None; data.len()];
        for (c, members) in comps.iter().enumerate() {
            for &p in members {
                comp_pred[p as usize] = Some(c as u32);
            }
        }
        t.row([
            bridges.to_string(),
            f4(matched_accuracy(&rock_pred, &truth).unwrap()),
            f4(matched_accuracy(&comp_pred, &truth).unwrap()),
            comps.len().to_string(),
        ]);
    }
    t.print();
    println!(
        "\n(one bridge suffices to fuse the components into a single blob,\n\
         while the link goodness keeps the genuine clusters apart)"
    );
}
