//! E5 — random sampling + labeling (paper §4.2–4.3).
//!
//! The large-data paradigm: cluster a random sample, then label the rest
//! of the dataset from per-cluster representative sets. This experiment
//! (i) prints the Chernoff-bound sample sizes for a range of guarantees,
//! and (ii) sweeps the sample size on the mushroom-like dataset, reporting
//! full-dataset accuracy after labeling — the quality should approach the
//! all-points run once the sample covers every sizable group.

use rock_bench::cli::ExpOptions;
use rock_bench::table::{banner, f4, TextTable};
use rock_core::metrics::{densify_labels, matched_accuracy, purity};
use rock_core::prelude::*;
use rock_core::telemetry::format_secs as secs;
use rock_datasets::synthetic::MushroomModel;

const THETA: f64 = 0.8;
const K: usize = 21;

fn main() {
    let opts = ExpOptions::from_env();

    banner("E5a: Chernoff-bound sample sizes (n = 8124)");
    let mut t = TextTable::new(["u_min", "xi", "delta", "s_min"]);
    for (u_min, xi, delta) in [
        (1828usize, 0.25f64, 0.05f64),
        (512, 0.25, 0.05),
        (128, 0.25, 0.05),
        (128, 0.5, 0.05),
        (128, 0.25, 0.001),
        (32, 0.25, 0.05),
    ] {
        let s = chernoff_sample_size(8124, u_min, xi, delta).expect("bound");
        t.row([
            u_min.to_string(),
            format!("{xi}"),
            format!("{delta}"),
            s.to_string(),
        ]);
    }
    t.print();
    println!("(smaller clusters / higher confidence need larger samples; capped at n)");

    banner("E5b: full-dataset accuracy vs sample size (mushroom-like)");
    let model = if opts.scale < 1.0 {
        MushroomModel::scaled(opts.scaled(8124, 500), K).seed(opts.seed)
    } else {
        MushroomModel::default().seed(opts.seed)
    };
    let n = model.num_records();
    let (table, classes, groups) = model.generate();
    let truth = densify_labels(&classes);
    let data = table.to_transactions();

    let mut t = TextTable::new([
        "sample",
        "group accuracy",
        "class purity",
        "clusters",
        "outliers",
        "fit_time",
    ]);
    for &s in &[250usize, 500, 1000, 2000, 4000] {
        let s = s.min(n);
        let rock = RockBuilder::new(K, THETA)
            .sample(SampleStrategy::Fixed(s))
            .seed(opts.seed)
            .build()
            .fit(&data)
            .expect("fit");
        let pred: Vec<Option<u32>> = rock.assignments().iter().map(|a| a.map(|c| c.0)).collect();
        t.row([
            s.to_string(),
            f4(matched_accuracy(&pred, &groups).unwrap()),
            f4(purity(&pred, &truth).unwrap()),
            rock.num_clusters().to_string(),
            rock.outliers().len().to_string(),
            secs(rock.stats().timings.total),
        ]);
    }
    t.print();
    println!(
        "\n(Accuracy climbs with sample size as smaller groups get covered;\n\
         outliers are points whose group had no representative in the sample.)"
    );
}
