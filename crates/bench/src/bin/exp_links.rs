//! E10 — link-kernel scaling (DESIGN.md §13).
//!
//! Benchmarks `LinkTable::compute_observed` alone — the paper's
//! `Σ deg²` hot spot — on the mushroom-like generator for 1, 2, 4 and
//! 8 workers. The neighbor graph is built once per size and reused, so
//! the measured wall time is the link phase only. Every parallel run is
//! checked against the sequential table: the sharded kernel must be
//! byte-identical for any thread count, so the only thing allowed to
//! change with `threads` is the wall clock.

use rock_bench::cli::ExpOptions;
use rock_bench::table::{banner, TextTable};
use rock_core::links::LinkTable;
use rock_core::neighbors::NeighborGraph;
use rock_core::prelude::*;
use rock_core::telemetry::trace::LatencyHistogram;
use rock_core::telemetry::{format_secs as secs, time_it};
use rock_datasets::synthetic::MushroomModel;

const THETA: f64 = 0.73;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let opts = ExpOptions::from_env();
    banner("E10: link kernel wall time vs worker count (mushroom-like)");

    let sizes = [opts.scaled(2000, 256), opts.scaled(6000, 256)];

    let full = MushroomModel::default().seed(opts.seed);
    let (table, _, _) = full.generate();
    let data = table.to_transactions();

    let mut t = TextTable::new([
        "n",
        "threads",
        "links_p50",
        "links_p99",
        "kernel_steps",
        "entries",
        "speedup",
    ]);
    for &n in &sizes {
        let n = n.min(data.len());
        let sample = data.subset(&(0..n).collect::<Vec<_>>());
        // The graph is shared input for every thread count; its cost is
        // deliberately outside the measured window.
        let graph = NeighborGraph::compute(&sample, &Jaccard, THETA, 0).expect("neighbor graph");

        let mut sequential: Option<(LinkTable, std::time::Duration)> = None;
        for &threads in &THREADS {
            // Every epoch's wall time goes into a log2-bucketed
            // LatencyHistogram (rock-trace/v1's bucket scheme); the
            // reported numbers are its p50/p99 rather than the mean, so
            // one descheduled epoch cannot drag the estimate. The median
            // epoch's metrics feed the CI regression gate (bench_check).
            let mut hist = LatencyHistogram::new();
            let mut epochs: Vec<(std::time::Duration, Metrics)> = Vec::new();
            let mut links_out: Option<LinkTable> = None;
            for _ in 0..opts.epochs {
                let observer = Observer::new();
                let span = observer.phase(Phase::Links);
                let (links, wall) =
                    time_it(|| LinkTable::compute_observed(&graph, threads, &observer));
                span.finish();
                let metrics = Metrics::collect(
                    &observer,
                    RunInfo {
                        experiment: format!("exp_links[n={n},threads={threads}]"),
                        n,
                        k: 0,
                        theta: THETA,
                        seed: opts.seed,
                        sample_size: n,
                        clusters: 0,
                        outliers: 0,
                    },
                    wall,
                );
                hist.record(u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX));
                epochs.push((wall, metrics));
                // The table is identical across epochs; keep only one.
                links_out.get_or_insert(links);
            }
            epochs.sort_by_key(|(wall, _)| *wall);
            let (wall, metrics) = epochs.swap_remove(epochs.len() / 2);
            let links = links_out.expect("at least one epoch");
            let p50 = std::time::Duration::from_nanos(hist.percentile(0.50));
            let p99 = std::time::Duration::from_nanos(hist.percentile(0.99));

            match &sequential {
                None => sequential = Some((links, wall)),
                Some((base, base_wall)) => {
                    assert_eq!(
                        links, *base,
                        "parallel link table diverged from sequential at threads={threads}"
                    );
                    t.row([
                        n.to_string(),
                        threads.to_string(),
                        secs(p50),
                        secs(p99),
                        metrics.counters.link_kernel_steps.to_string(),
                        metrics.counters.link_entries.to_string(),
                        format!(
                            "{:.2}x",
                            base_wall.as_secs_f64() / wall.as_secs_f64().max(1e-9)
                        ),
                    ]);
                    opts.emit_metrics(&metrics);
                    continue;
                }
            }
            t.row([
                n.to_string(),
                threads.to_string(),
                secs(p50),
                secs(p99),
                metrics.counters.link_kernel_steps.to_string(),
                metrics.counters.link_entries.to_string(),
                "1.00x".to_string(),
            ]);
            opts.emit_metrics(&metrics);
        }
    }
    t.print();
    println!(
        "\n(Tables are byte-identical across thread counts by construction;\n\
         counters must match exactly, only the wall clock may move.)"
    );
}
