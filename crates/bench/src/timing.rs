//! Wall-clock timing helpers for the scalability experiments.

use std::time::{Duration, Instant};

/// Runs `f`, returning its result and elapsed wall-clock time.
pub fn time_it<T, F: FnOnce() -> T>(f: F) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration as fractional seconds with millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_elapsed_time() {
        let ((), d) = time_it(|| std::thread::sleep(Duration::from_millis(15)));
        assert!(d >= Duration::from_millis(14), "elapsed {d:?}");
    }

    #[test]
    fn returns_closure_value() {
        let (v, _) = time_it(|| 6 * 7);
        assert_eq!(v, 42);
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500s");
    }
}
