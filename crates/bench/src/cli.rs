//! Minimal command-line parsing shared by the experiment binaries.
//!
//! Every `exp_*` binary accepts `--seed <u64>`, `--scale <f64>` (shrinks
//! dataset sizes for quick runs) and `--epochs <usize>`; unknown flags
//! abort with a usage message. No external CLI crate is needed for three
//! flags.

/// Parsed common experiment options.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpOptions {
    /// RNG seed (default 42).
    pub seed: u64,
    /// Size multiplier in `(0, 1]` applied to dataset sizes (default 1.0).
    pub scale: f64,
    /// Number of repeated runs for mean ± std reporting (default 3).
    pub epochs: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            seed: 42,
            scale: 1.0,
            epochs: 3,
        }
    }
}

impl ExpOptions {
    /// Parses from an iterator of arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = ExpOptions::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> Result<String, String> {
                it.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--seed" => {
                    opts.seed = take("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--scale" => {
                    opts.scale = take("--scale")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?;
                    if !(opts.scale > 0.0 && opts.scale <= 1.0) {
                        return Err(format!("--scale must be in (0, 1], got {}", opts.scale));
                    }
                }
                "--epochs" => {
                    opts.epochs = take("--epochs")?
                        .parse()
                        .map_err(|e| format!("--epochs: {e}"))?;
                    if opts.epochs == 0 {
                        return Err("--epochs must be positive".to_owned());
                    }
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: exp_* [--seed <u64>] [--scale <0..1>] [--epochs <n>]".to_owned()
                    );
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        Ok(opts)
    }

    /// Parses from the process arguments, exiting with a message on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Applies the scale factor to a size, keeping at least `min`.
    pub fn scaled(&self, size: usize, min: usize) -> usize {
        ((size as f64 * self.scale).round() as usize).max(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExpOptions, String> {
        ExpOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o, ExpOptions::default());
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(&["--seed", "7", "--scale", "0.5", "--epochs", "10"]).unwrap();
        assert_eq!(o.seed, 7);
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.epochs, 10);
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "x"]).is_err());
        assert!(parse(&["--scale", "0"]).is_err());
        assert!(parse(&["--scale", "1.5"]).is_err());
        assert!(parse(&["--epochs", "0"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }

    #[test]
    fn scaled_respects_minimum() {
        let o = parse(&["--scale", "0.1"]).unwrap();
        assert_eq!(o.scaled(1000, 50), 100);
        assert_eq!(o.scaled(100, 50), 50);
    }
}
