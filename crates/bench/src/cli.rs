//! Minimal command-line parsing shared by the experiment binaries.
//!
//! Every `exp_*` binary accepts `--seed <u64>`, `--scale <f64>` (shrinks
//! dataset sizes for quick runs), `--epochs <usize>` and
//! `--metrics <FILE>` (append one NDJSON telemetry line per observed
//! run); unknown flags abort with a usage message. No external CLI crate
//! is needed for four flags.

use std::io::Write;
use std::path::PathBuf;

use rock_core::telemetry::Metrics;

/// Parsed common experiment options.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpOptions {
    /// RNG seed (default 42).
    pub seed: u64,
    /// Size multiplier in `(0, 1]` applied to dataset sizes (default 1.0).
    pub scale: f64,
    /// Number of repeated runs for mean ± std reporting (default 3).
    pub epochs: usize,
    /// Append telemetry NDJSON lines to this file (default: no metrics).
    pub metrics: Option<PathBuf>,
    /// Write a `rock-trace/v1` NDJSON event stream of one run here
    /// (default: tracing disabled).
    pub trace: Option<PathBuf>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            seed: 42,
            scale: 1.0,
            epochs: 3,
            metrics: None,
            trace: None,
        }
    }
}

impl ExpOptions {
    /// Parses from an iterator of arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = ExpOptions::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> Result<String, String> {
                it.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--seed" => {
                    opts.seed = take("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--scale" => {
                    opts.scale = take("--scale")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?;
                    if !(opts.scale > 0.0 && opts.scale <= 1.0) {
                        return Err(format!("--scale must be in (0, 1], got {}", opts.scale));
                    }
                }
                "--epochs" => {
                    opts.epochs = take("--epochs")?
                        .parse()
                        .map_err(|e| format!("--epochs: {e}"))?;
                    if opts.epochs == 0 {
                        return Err("--epochs must be positive".to_owned());
                    }
                }
                "--metrics" => {
                    opts.metrics = Some(PathBuf::from(take("--metrics")?));
                }
                "--trace" => {
                    opts.trace = Some(PathBuf::from(take("--trace")?));
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: exp_* [--seed <u64>] [--scale <0..1>] [--epochs <n>] \
                         [--metrics <FILE>] [--trace <FILE>]"
                            .to_owned(),
                    );
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        Ok(opts)
    }

    /// Parses from the process arguments, exiting with a message on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Applies the scale factor to a size, keeping at least `min`.
    pub fn scaled(&self, size: usize, min: usize) -> usize {
        ((size as f64 * self.scale).round() as usize).max(min)
    }

    /// Appends `metrics` as one NDJSON line to the `--metrics` file, if
    /// one was given. Aborts the experiment on I/O errors: a silently
    /// dropped baseline is worse than a failed run.
    pub fn emit_metrics(&self, metrics: &Metrics) {
        let Some(path) = &self.metrics else {
            return;
        };
        let result = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| writeln!(f, "{}", metrics.to_ndjson_line()));
        if let Err(e) = result {
            eprintln!("cannot write metrics to {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExpOptions, String> {
        ExpOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o, ExpOptions::default());
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(&[
            "--seed",
            "7",
            "--scale",
            "0.5",
            "--epochs",
            "10",
            "--metrics",
            "bench.json",
            "--trace",
            "bench.trace",
        ])
        .unwrap();
        assert_eq!(o.seed, 7);
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.epochs, 10);
        assert_eq!(o.metrics, Some(PathBuf::from("bench.json")));
        assert_eq!(o.trace, Some(PathBuf::from("bench.trace")));
    }

    #[test]
    fn emit_metrics_appends_ndjson_lines() {
        use rock_core::telemetry::{Observer, RunInfo};
        let dir = std::env::temp_dir().join("rock-bench-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.ndjson");
        std::fs::remove_file(&path).ok();
        let opts = ExpOptions {
            metrics: Some(path.clone()),
            ..ExpOptions::default()
        };
        let run = RunInfo {
            experiment: "test".into(),
            n: 10,
            k: 2,
            theta: 0.5,
            seed: 1,
            sample_size: 10,
            clusters: 2,
            outliers: 0,
        };
        let m = Metrics::collect(&Observer::new(), run, std::time::Duration::from_millis(5));
        opts.emit_metrics(&m);
        opts.emit_metrics(&m);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.contains("rock-metrics/v1")));
        std::fs::remove_file(&path).ok();
        // Without --metrics, emitting is a no-op.
        ExpOptions::default().emit_metrics(&m);
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "x"]).is_err());
        assert!(parse(&["--scale", "0"]).is_err());
        assert!(parse(&["--scale", "1.5"]).is_err());
        assert!(parse(&["--epochs", "0"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }

    #[test]
    fn scaled_respects_minimum() {
        let o = parse(&["--scale", "0.1"]).unwrap();
        assert_eq!(o.scaled(1000, 50), 100);
        assert_eq!(o.scaled(100, 50), 50);
    }
}
