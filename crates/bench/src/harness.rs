//! Minimal micro-benchmark harness on plain `std::time`.
//!
//! The workspace builds offline with zero external dependencies, so the
//! `benches/` targets (`harness = false`) time themselves with this
//! module instead of criterion: one warm-up call, then `samples` timed
//! samples of `inner` calls each, reporting the minimum, median and mean
//! per-call time. The minimum is the headline number — it is the least
//! noisy estimator on a busy machine.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Formats a per-call duration with an appropriate unit.
pub fn per_call(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Times `f` and prints one result line.
///
/// Runs one untimed warm-up call, then `samples` timed samples, each
/// averaging over `inner` calls (use `inner > 1` for sub-microsecond
/// functions so a sample spans enough clock ticks to be meaningful).
pub fn bench<T>(name: &str, samples: usize, inner: usize, mut f: impl FnMut() -> T) {
    assert!(samples > 0 && inner > 0, "bench needs at least one call");
    black_box(f());
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..inner {
                black_box(f());
            }
            start.elapsed() / inner as u32
        })
        .collect();
    times.sort();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!(
        "{name:<44} min {:>10}   median {:>10}   mean {:>10}   ({samples} x {inner})",
        per_call(min),
        per_call(median),
        per_call(mean)
    );
}

/// Prints a group header, mirroring criterion's benchmark groups.
pub fn group(name: &str) {
    println!("\n── {name} ──");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_call_picks_sensible_units() {
        assert_eq!(per_call(Duration::from_nanos(500)), "500 ns");
        assert_eq!(per_call(Duration::from_micros(50)), "50.00 µs");
        assert_eq!(per_call(Duration::from_millis(50)), "50.00 ms");
        assert_eq!(per_call(Duration::from_secs(50)), "50.00 s");
    }

    #[test]
    fn bench_runs_the_closure() {
        let mut calls = 0u32;
        bench("test", 2, 3, || calls += 1);
        // 1 warm-up + 2 samples x 3 inner calls.
        assert_eq!(calls, 7);
    }
}
