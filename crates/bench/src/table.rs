//! Fixed-width text tables for experiment output.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells beyond the header count are kept; short rows
    /// are padded when rendering).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        if !self.headers.is_empty() {
            out.push_str(&fmt_row(&self.headers, &widths));
            out.push('\n');
            let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 4 decimals.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats `mean ± std`.
pub fn pm(mean: f64, std: f64) -> String {
    format!("{mean:.4} ±{std:.4}")
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["cluster", "size"]);
        t.row(["C0", "1728"]).row(["C1", "8"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[0], "cluster  size");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "C0       1728");
        assert_eq!(lines[3], "C1       8");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pads_short_rows_and_wide_cells() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["long-cell"]);
        let r = t.render();
        assert!(r.contains("long-cell"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f4(0.5), "0.5000");
        assert_eq!(pm(0.5, 0.01), "0.5000 ±0.0100");
    }
}
