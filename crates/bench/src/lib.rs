//! # rock-bench
//!
//! Experiment harness regenerating every table and figure of the ROCK
//! evaluation (see `DESIGN.md` §4 for the experiment index) plus plain
//! `std::time` micro-benchmarks. Each `exp_*` binary prints the
//! paper-style table for one experiment; `EXPERIMENTS.md` records
//! paper-vs-measured results. Binaries accept `--metrics FILE` to append
//! one NDJSON [`rock_core::telemetry::Metrics`] line per observed run
//! (the committed `results/BENCH_*.json` baselines).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;
pub mod harness;
pub mod table;
