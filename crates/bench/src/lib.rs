//! # rock-bench
//!
//! Experiment harness regenerating every table and figure of the ROCK
//! evaluation (see `DESIGN.md` §4 for the experiment index) plus Criterion
//! micro-benchmarks. Each `exp_*` binary prints the paper-style table for
//! one experiment; `EXPERIMENTS.md` records paper-vs-measured results.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;
pub mod table;
pub mod timing;
