//! `rock-trace` — analyze a **rock-trace/v1** NDJSON event stream.
//!
//! ```text
//! rock-cluster --input data.csv --k 8 --theta 0.7 --trace fit.trace
//! rock-trace fit.trace                      # timeline + self-time + percentiles
//! rock-trace fit.trace --check              # canonical-form validation only
//! rock-trace fit.trace --export-chrome t.json   # chrome://tracing JSON
//! ```
//!
//! The default report has three sections:
//!
//! * **phase timeline** — the sequential `phase` scope spans in begin
//!   order, with start offset, duration and share of total,
//! * **span summary** — every span name aggregated: count, distinct
//!   workers, total time and *self* time (duration minus the duration of
//!   child spans, flamegraph-style, so a phase whose time is fully
//!   accounted to its worker shards shows near-zero self time),
//! * **histograms** — each `hist` record's p50/p90/p99/max.
//!
//! `--check` re-emits every parsed line and fails unless the bytes match
//! (the canonical-form contract of `rock_core::telemetry::trace`); ci.sh
//! runs it over the traces the integration suite produces. The Chrome
//! export writes `trace_event` complete (`"ph":"X"`) events — load the
//! file in `chrome://tracing` or Perfetto; lanes are worker ids.
//!
//! Exit codes: 0 ok, 2 usage, 3 I/O, 4 invalid or non-canonical trace.

use std::path::PathBuf;
use std::process::ExitCode;

use rock_core::cast::u64_to_f64;
use rock_core::telemetry::json::JsonObj;
use rock_core::telemetry::trace::{validate, HistRecord, PayloadValue, SpanRecord, TraceRecord};

/// Parsed command line.
#[derive(Debug)]
struct Options {
    input: PathBuf,
    check_only: bool,
    export_chrome: Option<PathBuf>,
}

const USAGE: &str = "\
usage: rock-trace <trace-file> [options]

  --check                 validate only: schema, parseability and the
                          canonical emit->parse->re-emit contract
  --export-chrome <path>  also write Chrome trace_event JSON (open in
                          chrome://tracing or Perfetto)

Reads a rock-trace/v1 NDJSON stream (rock-cluster/rock-serve --trace)
and prints a phase timeline, a self-time span summary and latency
histogram percentiles.";

fn parse_args<I: Iterator<Item = String>>(mut args: I) -> Result<Options, String> {
    let mut input: Option<PathBuf> = None;
    let mut check_only = false;
    let mut export_chrome = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check_only = true,
            "--export-chrome" => {
                let path = args
                    .next()
                    .ok_or_else(|| format!("--export-chrome requires a value\n{USAGE}"))?;
                export_chrome = Some(PathBuf::from(path));
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag:?}\n{USAGE}"))
            }
            path => {
                if input.is_some() {
                    return Err(format!("more than one trace file given\n{USAGE}"));
                }
                input = Some(PathBuf::from(path));
            }
        }
    }
    Ok(Options {
        input: input.ok_or_else(|| format!("a trace file is required\n{USAGE}"))?,
        check_only,
        export_chrome,
    })
}

/// A parsed stream, split by record type (order preserved within each).
#[derive(Debug)]
struct Trace {
    source: String,
    spans: Vec<SpanRecord>,
    hists: Vec<HistRecord>,
}

/// Parses and validates the full stream. Validation runs first so every
/// later consumer can assume well-formed, canonical records.
fn load_trace(text: &str) -> Result<Trace, String> {
    let summary = validate(text)?;
    let mut spans = Vec::with_capacity(summary.spans);
    let mut hists = Vec::with_capacity(summary.hists);
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        // validate() has already proven every line parses.
        match TraceRecord::parse_line(line)? {
            TraceRecord::Meta { .. } => {}
            TraceRecord::Span(s) => spans.push(s),
            TraceRecord::Hist(h) => hists.push(*h),
        }
    }
    Ok(Trace {
        source: summary.source,
        spans,
        hists,
    })
}

/// Nanoseconds → milliseconds for display.
fn ms(ns: u64) -> f64 {
    u64_to_f64(ns) / 1.0e6
}

/// Nanoseconds → microseconds for display.
fn us(ns: u64) -> f64 {
    u64_to_f64(ns) / 1.0e3
}

/// Renders the phase timeline: `phase` scope spans in begin order.
fn render_timeline(out: &mut String, trace: &Trace) {
    let mut phases: Vec<&SpanRecord> = trace.spans.iter().filter(|s| s.name == "phase").collect();
    if phases.is_empty() {
        return;
    }
    phases.sort_by_key(|s| s.ts_ns);
    let total: u64 = phases.iter().map(|s| s.dur_ns).sum();
    out.push_str("phase timeline\n");
    out.push_str(&format!(
        "  {:<12} {:>12} {:>12} {:>7}\n",
        "phase", "start_ms", "dur_ms", "share"
    ));
    for span in &phases {
        let share = if total > 0 {
            100.0 * u64_to_f64(span.dur_ns) / u64_to_f64(total)
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:<12} {:>12.3} {:>12.3} {:>6.1}%\n",
            span.phase.as_deref().unwrap_or("-"),
            ms(span.ts_ns),
            ms(span.dur_ns),
            share
        ));
    }
    out.push_str(&format!(
        "  {:<12} {:>12} {:>12.3}\n\n",
        "total",
        "",
        ms(total)
    ));
}

/// Per-name aggregate for the span summary table.
#[derive(Default)]
struct NameStats {
    count: u64,
    workers: std::collections::BTreeSet<u64>,
    total_ns: u64,
    self_ns: u64,
}

/// Renders the flamegraph-style summary: self time charges each span's
/// duration minus its direct children's durations to its own name.
fn render_summary(out: &mut String, trace: &Trace) {
    if trace.spans.is_empty() {
        return;
    }
    // Child durations, charged to the parent id.
    let mut child_ns: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for span in &trace.spans {
        if span.parent != 0 {
            *child_ns.entry(span.parent).or_default() += span.dur_ns;
        }
    }
    let mut by_name: std::collections::BTreeMap<&str, NameStats> =
        std::collections::BTreeMap::new();
    for span in &trace.spans {
        let stats = by_name.entry(span.name.as_str()).or_default();
        stats.count += 1;
        stats.workers.insert(span.worker);
        stats.total_ns += span.dur_ns;
        let children = child_ns.get(&span.id).copied().unwrap_or(0);
        stats.self_ns += span.dur_ns.saturating_sub(children);
    }
    out.push_str("span summary\n");
    out.push_str(&format!(
        "  {:<20} {:>6} {:>8} {:>12} {:>12}\n",
        "name", "count", "workers", "total_ms", "self_ms"
    ));
    let mut rows: Vec<(&str, NameStats)> = by_name.into_iter().collect();
    rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(b.0)));
    for (name, stats) in rows {
        out.push_str(&format!(
            "  {:<20} {:>6} {:>8} {:>12.3} {:>12.3}\n",
            name,
            stats.count,
            stats.workers.len(),
            ms(stats.total_ns),
            ms(stats.self_ns)
        ));
    }
    out.push('\n');
}

/// Renders each histogram's percentile breakdown (values in µs).
fn render_hists(out: &mut String, trace: &Trace) {
    if trace.hists.is_empty() {
        return;
    }
    out.push_str("histograms (us)\n");
    out.push_str(&format!(
        "  {:<22} {:>6} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
        "name", "worker", "count", "p50", "p90", "p99", "max"
    ));
    for h in &trace.hists {
        let worker = h.worker.map_or_else(|| "-".to_owned(), |w| w.to_string());
        out.push_str(&format!(
            "  {:<22} {:>6} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
            h.name,
            worker,
            h.hist.count(),
            us(h.hist.percentile(0.50)),
            us(h.hist.percentile(0.90)),
            us(h.hist.percentile(0.99)),
            us(h.hist.max())
        ));
    }
    out.push('\n');
}

/// The full default report.
fn render_report(path: &std::path::Path, trace: &Trace) -> String {
    let mut out = format!(
        "rock-trace: {} (source {}, {} spans, {} hists)\n\n",
        path.display(),
        trace.source,
        trace.spans.len(),
        trace.hists.len()
    );
    render_timeline(&mut out, trace);
    render_summary(&mut out, trace);
    render_hists(&mut out, trace);
    out
}

/// Serializes the spans as Chrome `trace_event` complete events
/// (`{"traceEvents":[...]}`); timestamps and durations are microseconds,
/// lanes (`tid`) are worker ids, categories are pipeline phases.
fn export_chrome(trace: &Trace) -> String {
    let mut events = Vec::with_capacity(trace.spans.len());
    for span in &trace.spans {
        let mut args = JsonObj::new(false, 0);
        args.num_u64("span", span.id);
        if span.parent != 0 {
            args.num_u64("parent", span.parent);
        }
        for (key, value) in &span.payload {
            match value {
                PayloadValue::Num(v) => args.num_f64(key, *v),
                PayloadValue::Str(v) => args.str(key, v),
            };
        }
        let mut event = JsonObj::new(false, 0);
        event
            .str("name", &span.name)
            .str("cat", span.phase.as_deref().unwrap_or(&trace.source))
            .str("ph", "X")
            .num_f64("ts", u64_to_f64(span.ts_ns) / 1.0e3)
            .num_f64("dur", u64_to_f64(span.dur_ns) / 1.0e3)
            .num_u64("pid", 1)
            .num_u64("tid", span.worker)
            .raw("args", &args.end());
        events.push(event.end());
    }
    let mut doc = String::from("{\"traceEvents\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        doc.push('\n');
        doc.push_str(event);
    }
    doc.push_str("\n]}\n");
    doc
}

/// 0 ok, 3 I/O, 4 invalid trace (usage errors exit 2 from `main`).
fn run(opts: &Options) -> Result<(), (u8, String)> {
    let text = std::fs::read_to_string(&opts.input)
        .map_err(|e| (3, format!("{}: {e}", opts.input.display())))?;
    let trace = load_trace(&text).map_err(|e| (4, format!("{}: {e}", opts.input.display())))?;
    if opts.check_only {
        println!(
            "ok: {} (source {}, {} spans, {} hists)",
            opts.input.display(),
            trace.source,
            trace.spans.len(),
            trace.hists.len()
        );
        return Ok(());
    }
    print!("{}", render_report(&opts.input, &trace));
    if let Some(path) = &opts.export_chrome {
        std::fs::write(path, export_chrome(&trace))
            .map_err(|e| (3, format!("{}: {e}", path.display())))?;
        eprintln!("chrome trace written to {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err((code, msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_core::telemetry::json::Json;
    use rock_core::telemetry::trace::{LatencyHistogram, TRACE_SCHEMA};

    /// A tiny canonical stream: one phase scope, two worker shards
    /// under it, one histogram.
    fn sample_trace() -> String {
        let mut hist = LatencyHistogram::new();
        for v in [1_000u64, 2_000, 150_000] {
            hist.record(v);
        }
        let records = vec![
            TraceRecord::Meta {
                schema: TRACE_SCHEMA.to_owned(),
                source: "unit".to_owned(),
            },
            TraceRecord::Span(SpanRecord {
                id: 2,
                parent: 1,
                name: "links.shard".to_owned(),
                phase: Some("links".to_owned()),
                worker: 0,
                ts_ns: 1_000,
                dur_ns: 40_000,
                payload: vec![("rows".to_owned(), PayloadValue::Num(64.0))],
            }),
            TraceRecord::Span(SpanRecord {
                id: 3,
                parent: 1,
                name: "links.shard".to_owned(),
                phase: Some("links".to_owned()),
                worker: 1,
                ts_ns: 1_500,
                dur_ns: 50_000,
                payload: vec![("rows".to_owned(), PayloadValue::Num(64.0))],
            }),
            TraceRecord::Span(SpanRecord {
                id: 1,
                parent: 0,
                name: "phase".to_owned(),
                phase: Some("links".to_owned()),
                worker: 0,
                ts_ns: 0,
                dur_ns: 100_000,
                payload: vec![("entries".to_owned(), PayloadValue::Num(12.0))],
            }),
            TraceRecord::Hist(Box::new(HistRecord {
                name: "links.shard_ns".to_owned(),
                worker: Some(0),
                unit: "ns".to_owned(),
                hist,
            })),
        ];
        let mut text = String::new();
        for r in records {
            text.push_str(&r.to_line());
            text.push('\n');
        }
        text
    }

    #[test]
    fn parses_flags_and_rejects_garbage() {
        let o = parse_args(
            ["t.trace", "--check", "--export-chrome", "c.json"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(o.input, PathBuf::from("t.trace"));
        assert!(o.check_only);
        assert_eq!(o.export_chrome, Some(PathBuf::from("c.json")));
        assert!(parse_args(std::iter::empty()).is_err());
        assert!(parse_args(["--wat".to_owned()].into_iter()).is_err());
        assert!(parse_args(["a".to_owned(), "b".to_owned()].into_iter()).is_err());
        assert!(parse_args(["--export-chrome".to_owned()].into_iter()).is_err());
    }

    #[test]
    fn report_contains_all_three_sections() {
        let trace = load_trace(&sample_trace()).unwrap();
        assert_eq!(trace.source, "unit");
        let report = render_report(std::path::Path::new("t.trace"), &trace);
        assert!(report.contains("phase timeline"));
        assert!(report.contains("span summary"));
        assert!(report.contains("histograms (us)"));
        assert!(report.contains("links.shard"));
        // The phase span's 100us minus the shards' 90us leaves 10us of
        // self time; the shards keep their full time (leaf spans).
        assert!(report.contains("0.010"), "phase self time:\n{report}");
        assert!(report.contains("0.090"), "shard total time:\n{report}");
    }

    #[test]
    fn load_rejects_non_canonical_streams() {
        let mut text = sample_trace();
        text.push_str(
            "{\"type\":\"span\",\"name\":\"x\",\"id\":9,\"worker\":0,\"ts_ns\":0,\"dur_ns\":0}\n",
        );
        let err = load_trace(&text).unwrap_err();
        assert!(err.contains("canonical"), "{err}");
    }

    #[test]
    fn chrome_export_is_valid_json_with_one_event_per_span() {
        let trace = load_trace(&sample_trace()).unwrap();
        let doc = export_chrome(&trace);
        let parsed = Json::parse(&doc).unwrap();
        let Some(Json::Arr(events)) = parsed.get("traceEvents") else {
            panic!("missing traceEvents array");
        };
        assert_eq!(events.len(), 3);
        let first = &events[0];
        assert_eq!(first.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(first.get("cat").and_then(Json::as_str), Some("links"));
        assert_eq!(first.get("tid").and_then(Json::as_u64), Some(0));
        // ts/dur are microseconds.
        assert_eq!(first.get("dur").and_then(Json::as_f64), Some(40.0));
        let args = first.get("args").unwrap();
        assert_eq!(args.get("rows").and_then(Json::as_f64), Some(64.0));
        assert_eq!(args.get("parent").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn run_round_trips_a_real_file() {
        let dir = std::env::temp_dir().join("rock-trace-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("sample.trace");
        std::fs::write(&input, sample_trace()).unwrap();
        let chrome = dir.join("sample.chrome.json");
        run(&Options {
            input: input.clone(),
            check_only: false,
            export_chrome: Some(chrome.clone()),
        })
        .unwrap();
        let exported = std::fs::read_to_string(&chrome).unwrap();
        assert!(Json::parse(&exported).is_ok());
        run(&Options {
            input: input.clone(),
            check_only: true,
            export_chrome: None,
        })
        .unwrap();
        // Missing file → I/O (3); garbage → invalid trace (4).
        let (code, _) = run(&Options {
            input: dir.join("missing.trace"),
            check_only: true,
            export_chrome: None,
        })
        .unwrap_err();
        assert_eq!(code, 3);
        std::fs::write(dir.join("bad.trace"), "not a trace\n").unwrap();
        let (code, _) = run(&Options {
            input: dir.join("bad.trace"),
            check_only: true,
            export_chrome: None,
        })
        .unwrap_err();
        assert_eq!(code, 4);
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&chrome).ok();
    }
}
