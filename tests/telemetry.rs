//! Telemetry integration tests: every pipeline counter is checked
//! against hand-computed values on a 6-transaction fixture — two
//! disjoint "triangles" whose neighbor graph, link table and merge
//! sequence can be worked out on paper.
//!
//! Fixture (θ = 0.4, Jaccard):
//! - group A: {0,1,2}, {0,1,3}, {0,2,3} — pairwise similarity 2/4 = 0.5
//! - group B: {10,11,12}, {10,11,13}, {10,12,13} — likewise 0.5
//! - across groups: similarity 0
//!
//! So each group is a 3-clique: every point has degree 2, each pair
//! within a group has exactly one common neighbor, and the two groups
//! share nothing.

use rock::core::agglomerate::{agglomerate_observed, AgglomerateConfig};
use rock::core::labeling::label_many_observed;
use rock::core::links::LinkTable;
use rock::core::neighbors::NeighborGraph;
use rock::core::rng::Rng;
use rock::prelude::*;

const THETA: f64 = 0.4;

fn fixture() -> TransactionSet {
    TransactionSet::new(
        vec![
            Transaction::new([0, 1, 2]),
            Transaction::new([0, 1, 3]),
            Transaction::new([0, 2, 3]),
            Transaction::new([10, 11, 12]),
            Transaction::new([10, 11, 13]),
            Transaction::new([10, 12, 13]),
        ],
        14,
    )
}

#[test]
fn stage_counters_match_hand_computed_values() {
    let data = fixture();
    let observer = Observer::new();

    let graph = NeighborGraph::compute_observed(&data, &Jaccard, THETA, 1, &observer).unwrap();
    let links = LinkTable::compute_observed(&graph, 1, &observer);
    let goodness = Goodness::new(THETA, &MarketBasket).unwrap();
    let agg = agglomerate_observed(
        data.len(),
        &links,
        &goodness,
        &AgglomerateConfig::new(2),
        &observer,
    )
    .unwrap();
    assert_eq!(agg.clusters.len(), 2);

    let c = observer.counters().snapshot();
    // All n(n-1) = 6·5 ordered pairs are evaluated.
    assert_eq!(c.similarity_comparisons, 30);
    // Each point has 2 neighbors; edges are counted directed: Σ deg = 12.
    assert_eq!(c.neighbor_edges, 12);
    // Link kernel work is Σ_i Σ_{l ∈ N(i)} deg(l) = 6 · 2 · 2 = 24 —
    // the paper's Σ m_i² bound instantiated on this graph.
    assert_eq!(c.link_kernel_steps, 24);
    // Within a 3-clique every pair has exactly one common neighbor:
    // 3 pairs per group, nothing across groups.
    assert_eq!(c.link_entries, 6);
    // 6 points → 2 clusters is exactly 4 merge steps.
    assert_eq!(c.merges, 4);
    // The heap machinery must have been exercised; exact push/pop counts
    // are an implementation detail of the local-heap maintenance.
    assert!(c.heap_pushes >= 4);
    assert!(c.heap_pops >= 4);
    // No sampling, outlier or labeling stages were run here.
    assert_eq!(c.points_sampled, 0);
    assert_eq!(c.outliers_filtered, 0);
    assert_eq!(c.outliers_pruned, 0);
    assert_eq!(c.labeling_evaluations, 0);
    assert_eq!(c.points_labeled, 0);

    // Memory gauges saw the two big structures.
    let m = observer.memory().snapshot();
    assert!(m.neighbor_graph > 0);
    assert!(m.link_table > 0);
    assert!(m.heaps > 0);
    assert_eq!(m.tracked_total(), m.neighbor_graph + m.link_table + m.heaps);
}

#[test]
fn outlier_filter_counts_dropped_points() {
    let data = fixture();
    let observer = Observer::new();
    let graph = NeighborGraph::compute_observed(&data, &Jaccard, THETA, 1, &observer).unwrap();
    // Every point has degree 2 < 3, so a min-neighbors-3 filter drops all.
    let (kept, out) = NeighborFilter::new(3).split_observed(&graph, &observer);
    assert!(kept.is_empty());
    assert_eq!(out.len(), 6);
    assert_eq!(observer.counters().snapshot().outliers_filtered, 6);
}

#[test]
fn labeling_counters_match_hand_computed_values() {
    let data = fixture();
    let observer = Observer::new();
    // All 6 fixture points as representatives: fraction 1.0, no cap.
    let config = LabelingConfig {
        representative_fraction: 1.0,
        max_representatives: 0,
    };
    let clusters = vec![vec![0u32, 1, 2], vec![3u32, 4, 5]];
    let mut rng = Rng::seed_from_u64(7);
    let reps = Representatives::draw(&data, &clusters, &config, &mut rng).unwrap();
    assert_eq!(reps.total(), 6);

    let a = Transaction::new([0, 1, 2]);
    let b = Transaction::new([10, 11, 12]);
    let points = vec![&a, &b];
    let labels = label_many_observed(&points, &reps, &Jaccard, &MarketBasket, THETA, 1, &observer);
    assert_eq!(labels, vec![Some(0), Some(1)]);

    let c = observer.counters().snapshot();
    // Every point is scored against every representative: 2 · 6.
    assert_eq!(c.labeling_evaluations, 12);
    assert_eq!(c.points_labeled, 2);
}

#[test]
fn fit_observed_exposes_the_same_counters_end_to_end() {
    let data = fixture();
    let observer = Observer::new();
    let model = RockBuilder::new(2, THETA)
        .sample(SampleStrategy::All)
        .seed(1)
        .build()
        .fit_observed(&data, &observer)
        .unwrap();
    assert_eq!(model.num_clusters(), 2);
    assert!(model.outliers().is_empty());

    let c = observer.counters().snapshot();
    assert_eq!(c.points_sampled, 6);
    assert_eq!(c.similarity_comparisons, 30);
    assert_eq!(c.neighbor_edges, 12);
    assert_eq!(c.link_kernel_steps, 24);
    assert_eq!(c.link_entries, 6);
    assert_eq!(c.merges, 4);
    assert_eq!(c.outliers_filtered, 0);
    // Everything was in the sample, so nothing needed labeling.
    assert_eq!(c.labeling_evaluations, 0);
    assert_eq!(c.points_labeled, 0);

    // Phase spans accumulated wall time; every phase at least started.
    let total: f64 = Phase::ALL
        .iter()
        .map(|&p| observer.phase_wall(p).as_secs_f64())
        .sum();
    assert!(total > 0.0);

    // The metrics snapshot carries it all through to JSON.
    let metrics = Metrics::collect(
        &observer,
        RunInfo {
            experiment: "fixture".into(),
            n: data.len(),
            k: 2,
            theta: THETA,
            seed: 1,
            sample_size: 6,
            clusters: model.num_clusters(),
            outliers: 0,
        },
        model.stats().timings.total,
    );
    let json = metrics.to_json();
    assert!(json.contains("\"schema\": \"rock-metrics/v1\""));
    assert!(json.contains("\"similarity_comparisons\": 30"));
    assert!(json.contains("\"merges\": 4"));
    assert!(json.contains("\"experiment\": \"fixture\""));
}

#[test]
fn sampled_fit_labels_the_rest_and_counts_it() {
    // 40 points in two blocks of 20; cluster a 12-point sample and label
    // the remaining 28. labeling_evaluations must be exactly
    // (unlabeled points) × (representatives drawn).
    let mut rows = Vec::new();
    for i in 0..20u32 {
        rows.push(Transaction::new([0, 1, 2, 20 + (i % 3)]));
        rows.push(Transaction::new([10, 11, 12, 30 + (i % 3)]));
    }
    let data = TransactionSet::new(rows, 40);
    let observer = Observer::new();
    let model = RockBuilder::new(2, 0.4)
        .sample(SampleStrategy::Fixed(12))
        .seed(3)
        .build()
        .fit_observed(&data, &observer)
        .unwrap();
    assert_eq!(model.num_clusters(), 2);

    let c = observer.counters().snapshot();
    assert_eq!(c.points_sampled, 12);
    assert_eq!(c.similarity_comparisons, 12 * 11);
    assert!(c.labeling_evaluations > 0);
    assert_eq!(c.labeling_evaluations % (40 - 12), 0);
    assert_eq!(c.points_labeled, 40 - 12);
}

#[test]
fn traced_fit_emits_a_deterministic_canonical_stream() {
    use rock::core::telemetry::trace::{validate, TraceRecord, TRACE_SCHEMA};

    // Same 40-point dataset as above: `Fixed(12)` guarantees a labeling
    // pass, and a 12-point sample keeps every stage on one worker, so
    // the event *structure* (not the timings) is fully deterministic.
    let mut rows = Vec::new();
    for i in 0..20u32 {
        rows.push(Transaction::new([0, 1, 2, 20 + (i % 3)]));
        rows.push(Transaction::new([10, 11, 12, 30 + (i % 3)]));
    }
    let data = TransactionSet::new(rows, 40);

    let dir = std::env::temp_dir().join("rock-telemetry-trace-test");
    std::fs::create_dir_all(&dir).unwrap();

    // Runs one traced fit and returns the stream with timestamps,
    // durations, span ids and histogram samples normalized away: record
    // kind, name, phase, worker and payload keys/values remain.
    let shape = |path: &std::path::Path| -> Vec<String> {
        let observer = Observer::new();
        let model = RockBuilder::new(2, 0.4)
            .sample(SampleStrategy::Fixed(12))
            .seed(3)
            .trace(path)
            .build()
            .fit_observed(&data, &observer)
            .unwrap();
        assert_eq!(model.num_clusters(), 2);

        let text = std::fs::read_to_string(path).unwrap();
        let summary = validate(&text).expect("stream must be canonical");
        assert_eq!(summary.source, "rock-core");
        assert_eq!(summary.spans, 10);
        assert_eq!(summary.hists, 2);

        let records: Vec<TraceRecord> = text
            .lines()
            .map(|line| {
                let record = TraceRecord::parse_line(line).unwrap();
                // Emit → parse → re-emit is byte-identical, line by line.
                assert_eq!(record.to_line(), line);
                record
            })
            .collect();

        // Worker spans nest under their phase scope: every non-"phase"
        // span's parent must be the id of a "phase" span, and phase
        // scopes themselves are roots.
        let phase_ids: std::collections::HashSet<u64> = records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Span(s) if s.name == "phase" => Some(s.id),
                _ => None,
            })
            .collect();
        for r in &records {
            if let TraceRecord::Span(s) = r {
                if s.name == "phase" {
                    assert_eq!(s.parent, 0, "phase scope {} must be a root", s.id);
                } else {
                    assert!(
                        phase_ids.contains(&s.parent),
                        "span {:?} must nest under a phase scope, parent {}",
                        s.name,
                        s.parent
                    );
                }
            }
        }

        records
            .iter()
            .map(|r| match r {
                TraceRecord::Meta { schema, .. } => format!("meta {schema}"),
                TraceRecord::Span(s) => {
                    let payload: Vec<String> = s
                        .payload
                        .iter()
                        .map(|(k, v)| format!("{k}={v:?}"))
                        .collect();
                    format!(
                        "span {} {} w{} [{}]",
                        s.name,
                        s.phase.as_deref().unwrap_or("-"),
                        s.worker,
                        payload.join(" ")
                    )
                }
                TraceRecord::Hist(h) => {
                    let worker = h.worker.map_or("-".to_owned(), |w| w.to_string());
                    format!("hist {} w{worker} {}", h.name, h.unit)
                }
            })
            .collect()
    };

    let first = shape(&dir.join("a.trace"));

    // The spine of the stream: one scope span per pipeline phase in
    // execution order, with the single-threaded worker spans and their
    // histograms inside. Spans are written at *end*, so each child line
    // precedes its enclosing phase line.
    let spine: Vec<(&str, &str)> = first
        .iter()
        .filter_map(|line| {
            let mut it = line.split_whitespace();
            match (it.next(), it.next(), it.next()) {
                (Some("meta"), Some(schema), _) => Some((schema, "")),
                (Some("span"), Some(name), Some(phase)) => Some((name, phase)),
                (Some("hist"), Some(name), _) => Some((name, "")),
                _ => None,
            }
        })
        .collect();
    assert_eq!(
        spine,
        vec![
            (TRACE_SCHEMA, ""),
            ("phase", "sample"),
            ("neighbors.scan", "neighbors"),
            ("phase", "neighbors"),
            ("phase", "outliers"),
            ("links.shard", "links"),
            ("links.shard_ns", ""),
            ("phase", "links"),
            ("agglomerate.batch", "agglomerate"),
            ("agglomerate.batch_ns", ""),
            ("phase", "agglomerate"),
            ("labeling.pass", "labeling"),
            ("phase", "labeling"),
        ]
    );

    // A second run with the same seed produces the identical normalized
    // stream — payload values (edge counts, merges, goodness) included.
    let second = shape(&dir.join("b.trace"));
    assert_eq!(first, second, "trace structure must be deterministic");
}
