//! Seed-loop equivalence suite for the inverted-index neighbor join
//! (DESIGN.md §17): for every similarity kind, θ and thread count, the
//! indexed join must produce a graph **byte-identical** to the
//! brute-force oracle, with thread-count-invariant counters.

use rock_core::guard::Guard;
use rock_core::prelude::*;
use rock_core::telemetry::Observer;

const THETAS: [f64; 3] = [0.2, 0.5, 0.8];
const THREADS: [usize; 4] = [1, 2, 4, 8];
const KINDS: [SimilarityKind; 4] = [
    SimilarityKind::Jaccard,
    SimilarityKind::Dice,
    SimilarityKind::Overlap,
    SimilarityKind::Cosine,
];

/// A deterministic adversarial dataset: skewed item frequencies (hub
/// items), duplicated rows, varying lengths and a sprinkle of empty
/// transactions — every special case the join handles outside the happy
/// path. n ≥ 256 so the requested thread counts actually engage.
fn random_set(seed: u64) -> TransactionSet {
    let mut rng = Rng::seed_from_u64(seed);
    let n = rng.gen_range(300..450usize);
    let mut rows: Vec<Transaction> = (0..n)
        .map(|_| {
            if rng.gen_bool(0.03) {
                return Transaction::empty();
            }
            // Two vocabularies of very different sizes: draws from the
            // small one create high-frequency hub items.
            let vocab: usize = if rng.gen_bool(0.3) { 8 } else { 60 };
            let len = rng.gen_range(1..8usize);
            Transaction::new((0..len).map(|_| rng.gen_range(0..vocab) as u32))
        })
        .collect();
    // Exact duplicates: identical rows are always mutual neighbors and
    // stress candidate deduplication.
    for _ in 0..8 {
        let src = rng.gen_range(0..rows.len());
        rows.push(rows[src].clone());
    }
    rows.into_iter().collect()
}

fn lists_of(g: &NeighborGraph) -> Vec<Vec<u32>> {
    (0..g.len()).map(|i| g.neighbors(i).to_vec()).collect()
}

#[test]
fn indexed_join_is_byte_identical_to_the_brute_oracle() {
    for seed in 0..6u64 {
        let data = random_set(seed);
        for kind in KINDS {
            for theta in THETAS {
                let oracle =
                    NeighborGraph::compute_brute_force(&data, &kind, theta, 1, &Observer::new())
                        .unwrap();
                let mut base_counters = None;
                for threads in THREADS {
                    let obs = Observer::new();
                    let (joined, trip) = NeighborGraph::compute_strategy(
                        &data,
                        &kind,
                        theta,
                        threads,
                        &obs,
                        &Guard::unlimited(),
                        JoinStrategy::Index,
                    )
                    .unwrap();
                    assert!(trip.is_none());
                    assert_eq!(
                        lists_of(&joined),
                        lists_of(&oracle),
                        "seed {seed}, {kind:?}, θ={theta}, threads {threads}"
                    );
                    let c = obs.counters().snapshot();
                    assert_eq!(
                        c.neighbor_edges,
                        rock_core::cast::usize_to_u64(oracle.num_edges()),
                        "seed {seed}, {kind:?}, θ={theta}, threads {threads}"
                    );
                    // Join work counters must not depend on the thread
                    // count (summed in spawn order).
                    let key = (
                        c.neighbor_candidates,
                        c.neighbor_candidates_pruned,
                        c.neighbor_pairs_verified,
                        c.similarity_comparisons,
                        obs.memory().snapshot().neighbor_graph,
                    );
                    match &base_counters {
                        None => base_counters = Some(key),
                        Some(base) => assert_eq!(
                            &key, base,
                            "seed {seed}, {kind:?}, θ={theta}, threads {threads}"
                        ),
                    }
                    // The size filter runs before verification, so the
                    // candidate ledger must balance exactly.
                    assert_eq!(
                        c.neighbor_candidates,
                        c.neighbor_candidates_pruned + c.neighbor_pairs_verified
                    );
                }
            }
        }
    }
}

#[test]
fn auto_strategy_picks_the_index_only_for_large_counts_measures() {
    // Large input + counts measure: the index engages (candidate
    // counters move).
    let data = random_set(1);
    let obs = Observer::new();
    let (_, trip) = NeighborGraph::compute_guarded(
        &data,
        &SimilarityKind::Jaccard,
        0.5,
        2,
        &obs,
        &Guard::unlimited(),
    )
    .unwrap();
    assert!(trip.is_none());
    assert!(obs.counters().snapshot().neighbor_candidates > 0);

    // Tiny input: Auto stays brute force.
    let tiny: TransactionSet = (0..50u32)
        .map(|i| Transaction::new([i % 7, i % 7 + 1]))
        .collect();
    let obs = Observer::new();
    let (_, _) = NeighborGraph::compute_guarded(
        &tiny,
        &SimilarityKind::Jaccard,
        0.5,
        2,
        &obs,
        &Guard::unlimited(),
    )
    .unwrap();
    assert_eq!(obs.counters().snapshot().neighbor_candidates, 0);

    // A measure without counts semantics falls back to brute force even
    // when the index is forced.
    let schema_rows = random_set(2);
    let obs = Observer::new();
    let (forced, _) = NeighborGraph::compute_strategy(
        &schema_rows,
        &HammingRecord { num_attributes: 8 },
        0.5,
        2,
        &obs,
        &Guard::unlimited(),
        JoinStrategy::Index,
    )
    .unwrap();
    assert_eq!(obs.counters().snapshot().neighbor_candidates, 0);
    let brute = NeighborGraph::compute_brute_force(
        &schema_rows,
        &HammingRecord { num_attributes: 8 },
        0.5,
        1,
        &Observer::new(),
    )
    .unwrap();
    assert_eq!(lists_of(&forced), lists_of(&brute));
}

#[test]
fn empty_transactions_follow_each_measures_empty_set_semantics() {
    // Two empty rows among nonempty ones. Jaccard/Dice/Cosine: empties
    // neighbor only each other (sim 1). Overlap: an empty row neighbors
    // *everything* (its best intersection, 0, equals its length).
    let mut rows: Vec<Transaction> = (0..300u32)
        .map(|i| Transaction::new([i % 9, i % 9 + 1, i % 9 + 2]))
        .collect();
    rows[7] = Transaction::empty();
    rows[200] = Transaction::empty();
    let data: TransactionSet = rows.into_iter().collect();
    for kind in KINDS {
        let oracle =
            NeighborGraph::compute_brute_force(&data, &kind, 0.5, 1, &Observer::new()).unwrap();
        let (joined, _) = NeighborGraph::compute_strategy(
            &data,
            &kind,
            0.5,
            4,
            &Observer::new(),
            &Guard::unlimited(),
            JoinStrategy::Index,
        )
        .unwrap();
        assert_eq!(lists_of(&joined), lists_of(&oracle), "{kind:?}");
        if kind == SimilarityKind::Overlap {
            assert_eq!(joined.degree(7), data.len() - 1, "overlap empty row");
            assert!(joined.neighbors(0).contains(&7));
        } else {
            assert_eq!(joined.neighbors(7), &[200], "{kind:?} empty row");
        }
    }
}

#[test]
fn theta_boundary_is_inclusive_through_the_index() {
    // sim = 1/3 exactly under Jaccard; the index must keep the pair at
    // θ = 1/3 and drop it one ulp above, exactly like the oracle.
    let mut rows: Vec<Transaction> = Vec::new();
    for i in 0..150u32 {
        rows.push(Transaction::new([3 * i, 3 * i + 1]));
        rows.push(Transaction::new([3 * i + 1, 3 * i + 2]));
    }
    let data: TransactionSet = rows.into_iter().collect();
    for (theta, expect_degree) in [(1.0 / 3.0, 1usize), (1.0 / 3.0 + 1e-9, 0usize)] {
        let (g, _) = NeighborGraph::compute_strategy(
            &data,
            &SimilarityKind::Jaccard,
            theta,
            4,
            &Observer::new(),
            &Guard::unlimited(),
            JoinStrategy::Index,
        )
        .unwrap();
        assert_eq!(g.degree(0), expect_degree, "θ={theta}");
    }
}

#[test]
fn oversized_vocabulary_takes_the_merge_path_and_matches_the_oracle() {
    // Items drawn from 0..6000 push the vocabulary past the dense
    // bit-matrix cutoff (4096), so verification runs the bounded
    // sorted merge instead of AND+popcount — same oracle contract.
    let mut rng = Rng::seed_from_u64(9);
    let rows: Vec<Transaction> = (0..300)
        .map(|_| {
            let len = rng.gen_range(3..12usize);
            Transaction::new((0..len).map(|_| rng.gen_range(0..6000usize) as u32))
        })
        .collect();
    let data: TransactionSet = rows.into_iter().collect();
    for theta in [0.2, 0.5] {
        let oracle = NeighborGraph::compute_brute_force(
            &data,
            &SimilarityKind::Jaccard,
            theta,
            1,
            &Observer::new(),
        )
        .unwrap();
        for threads in [1, 4] {
            let (joined, trip) = NeighborGraph::compute_strategy(
                &data,
                &SimilarityKind::Jaccard,
                theta,
                threads,
                &Observer::new(),
                &Guard::unlimited(),
                JoinStrategy::Index,
            )
            .unwrap();
            assert!(trip.is_none());
            assert_eq!(
                lists_of(&joined),
                lists_of(&oracle),
                "θ={theta} threads={threads}"
            );
        }
    }
}
