//! Chaos suite: deterministic fault injection against the full pipeline.
//!
//! The contract under test: **no input corruption, budget exhaustion, or
//! cancellation may panic, and every degraded outcome is a valid
//! partition** — assignments, clusters and outliers mutually consistent
//! and covering every point. Faults are injected three ways, all seeded:
//!
//! * `Guard::inject_trip_at` forces a budget trip at a chosen phase;
//! * real budgets (steps / deadline / memory / cancellation) trip on
//!   their own;
//! * `FaultInjector` poisons or truncates CSV text and injects I/O
//!   failures ahead of the pipeline.
//!
//! The final test drives the shipped `rock-cluster` binary end to end on
//! a mushroom-like dataset with an exhausted step budget and
//! `--on-error recover`, pinning the CLI acceptance criterion: exit 0, a
//! printed degraded outcome, and a `degradation` block in the metrics
//! JSON.

use std::time::Duration;

use rock::core::data::AttrId;
use rock::core::telemetry::Phase;
use rock::datasets::fault::FaultInjector;
use rock::datasets::loader::{parse_labeled, IngestMode, LabelPosition, LoadConfig};
use rock::datasets::synthetic::MushroomModel;
use rock::prelude::*;

/// Asserts the partition invariants that must hold on *every* outcome,
/// complete or degraded: clusters and outliers tile the point set, and
/// assignments agree with cluster membership.
fn assert_valid_partition(model: &RockModel, n: usize) {
    assert_eq!(model.assignments().len(), n);
    let clustered: usize = model.clusters().iter().map(Vec::len).sum();
    assert_eq!(
        clustered + model.outliers().len(),
        n,
        "clusters + outliers must cover all {n} points exactly once"
    );
    for &o in model.outliers() {
        assert!(
            model.assignments()[o as usize].is_none(),
            "outlier {o} must be unassigned"
        );
    }
    let mut seen = vec![false; n];
    for (c, members) in model.clusters().iter().enumerate() {
        for &p in members {
            assert!(!seen[p as usize], "point {p} appears in two clusters");
            seen[p as usize] = true;
            assert_eq!(
                model.assignments()[p as usize].map(|id| id.0 as usize),
                Some(c)
            );
        }
    }
}

fn mushroom_like(n: usize, groups: usize, seed: u64) -> (TransactionSet, usize) {
    let (table, _, _) = MushroomModel::scaled(n, groups).seed(seed).generate();
    let data = table.to_transactions();
    let len = data.len();
    (data, len)
}

#[test]
fn injected_trips_at_every_phase_degrade_cleanly() {
    let (data, n) = mushroom_like(240, 4, 5);
    for phase in Phase::ALL {
        let guard = Guard::unlimited().inject_trip_at(phase);
        let outcome = RockBuilder::new(4, 0.8)
            .sample(SampleStrategy::Fixed(120))
            .seed(5)
            .build()
            .fit_guarded(&data, &Observer::new(), &guard)
            .unwrap_or_else(|e| panic!("injection at {phase:?} errored: {e}"));
        assert!(outcome.is_degraded(), "injection at {phase:?} must degrade");
        let d = outcome.degradation().unwrap();
        assert_eq!(d.phase, phase);
        assert_eq!(d.reason, TripReason::Injected);
        assert_valid_partition(outcome.model(), n);
    }
}

#[test]
fn tripped_runs_still_flush_a_parseable_trace() {
    // `fit_guarded` flushes the rock-trace/v1 stream on every exit path,
    // so a budget trip at *any* phase must leave a truncated but
    // canonical (validate-clean) trace behind — the mid-flight spans of
    // the tripped phase are simply absent, never half-written.
    use rock::core::telemetry::trace::validate;
    let dir = std::env::temp_dir().join("rock-chaos-trace-test");
    std::fs::create_dir_all(&dir).unwrap();
    let (data, n) = mushroom_like(240, 4, 5);
    for phase in Phase::ALL {
        let path = dir.join(format!("trip-{phase:?}.trace"));
        std::fs::remove_file(&path).ok();
        let guard = Guard::unlimited().inject_trip_at(phase);
        let outcome = RockBuilder::new(4, 0.8)
            .sample(SampleStrategy::Fixed(120))
            .seed(5)
            .trace(&path)
            .build()
            .fit_guarded(&data, &Observer::new(), &guard)
            .unwrap_or_else(|e| panic!("injection at {phase:?} errored: {e}"));
        assert!(outcome.is_degraded(), "injection at {phase:?} must degrade");
        assert_valid_partition(outcome.model(), n);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("trip at {phase:?} left no trace: {e}"));
        let summary = validate(&text)
            .unwrap_or_else(|e| panic!("trip at {phase:?} left a non-canonical trace: {e}"));
        assert!(
            summary.spans >= 1,
            "trip at {phase:?}: at least the completed phases must have spans"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn real_budgets_trip_and_degrade() {
    let (data, n) = mushroom_like(200, 4, 9);
    let rock = RockBuilder::new(4, 0.8).seed(9).build();

    // Step budget.
    let guard = Guard::new(RunBudget::unlimited().steps(10));
    let outcome = rock.fit_guarded(&data, &Observer::new(), &guard).unwrap();
    assert!(outcome.is_degraded());
    assert_eq!(outcome.model().stats().merges, 10);
    assert_valid_partition(outcome.model(), n);

    // Zero deadline trips at the first checkpoint.
    let guard = Guard::new(RunBudget::unlimited().wall(Duration::ZERO));
    let outcome = rock.fit_guarded(&data, &Observer::new(), &guard).unwrap();
    assert!(matches!(
        outcome.degradation().unwrap().reason,
        TripReason::Deadline { .. }
    ));
    assert_valid_partition(outcome.model(), n);

    // A one-byte memory ceiling trips once any gauge reports.
    let guard = Guard::new(RunBudget::unlimited().memory(1));
    let outcome = rock.fit_guarded(&data, &Observer::new(), &guard).unwrap();
    assert!(matches!(
        outcome.degradation().unwrap().reason,
        TripReason::MemoryBudget { .. }
    ));
    assert_valid_partition(outcome.model(), n);

    // Cancellation before the run starts.
    let guard = Guard::unlimited();
    guard.cancel_token().cancel();
    let outcome = rock.fit_guarded(&data, &Observer::new(), &guard).unwrap();
    assert_eq!(outcome.degradation().unwrap().reason, TripReason::Cancelled);
    assert_valid_partition(outcome.model(), n);
}

#[test]
fn memory_budget_trips_mid_link_phase_under_parallel_workers() {
    // The sharded link kernel streams its stored-entry bytes into the
    // memory gauge and polls the guard from every worker, so a ceiling
    // crossed *while* the table grows must stop the run inside the
    // Links phase — not at the next boundary — and still yield a valid
    // degraded partition.
    let (data, n) = mushroom_like(600, 4, 11);
    let build = || {
        RockBuilder::new(4, 0.8)
            .sample(SampleStrategy::All)
            .threads(4)
            .seed(11)
            .build()
    };
    // Measure the neighbor graph's footprint on an identical run, then
    // allow only a sliver beyond it: the link table cannot fit.
    let observer = Observer::new();
    build().fit_observed(&data, &observer).unwrap();
    let neighbor_bytes = observer.memory().snapshot().neighbor_graph;
    assert!(neighbor_bytes > 0);

    let guard = Guard::new(RunBudget::unlimited().memory(neighbor_bytes + 512));
    let outcome = build()
        .fit_guarded(&data, &Observer::new(), &guard)
        .unwrap();
    assert!(outcome.is_degraded());
    let d = outcome.degradation().unwrap();
    assert_eq!(d.phase, Phase::Links);
    assert!(matches!(d.reason, TripReason::MemoryBudget { .. }));
    assert_valid_partition(outcome.model(), n);
}

#[test]
fn memory_budget_trips_inside_the_neighbor_index_build() {
    // The inverted-index join streams its build-buffer bytes into the
    // neighbor-graph gauge and polls the guard between passes and every
    // few rows, so a ceiling far below the index footprint must trip in
    // the Neighbors phase *before any candidate is generated* — not
    // after a full (quadratic or indexed) scan.
    let (data, n) = mushroom_like(600, 4, 11);
    let guard = Guard::new(RunBudget::unlimited().memory(256));
    let observer = Observer::new();
    let outcome = RockBuilder::new(4, 0.8)
        .sample(SampleStrategy::All)
        .threads(4)
        .seed(11)
        .build()
        .fit_guarded(&data, &observer, &guard)
        .unwrap();
    assert!(outcome.is_degraded());
    let d = outcome.degradation().unwrap();
    assert_eq!(d.phase, Phase::Neighbors);
    assert!(matches!(d.reason, TripReason::MemoryBudget { .. }));
    // Tripped during index construction: the probe never ran.
    assert_eq!(observer.counters().snapshot().neighbor_candidates, 0);
    assert_valid_partition(outcome.model(), n);
}

#[test]
fn degraded_prefix_agrees_with_unbudgeted_run() {
    // The anytime property, end to end: a step-budgeted run's merges are a
    // prefix of the unbudgeted run's, so its sample-phase history matches.
    let (data, _) = mushroom_like(160, 4, 13);
    let rock = RockBuilder::new(4, 0.8)
        .seed(13)
        .record_history(true)
        .build();
    let full = rock.fit(&data).unwrap();
    let guard = Guard::new(RunBudget::unlimited().steps(7));
    let partial = rock
        .fit_guarded(&data, &Observer::new(), &guard)
        .unwrap()
        .into_model();
    assert_eq!(partial.history().len(), 7);
    assert_eq!(&full.history()[..7], partial.history());
}

/// Satellite: seed-loop fuzz-lite. 64 seeded random datasets through the
/// guarded pipeline under randomized budgets — the run may complete or
/// degrade, but must never panic and must always return a valid
/// partition.
#[test]
fn fuzz_lite_64_seeds_under_random_budgets() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0x0c1a05 ^ seed);
        let n = rng.gen_range(24..96usize);
        let groups = rng.gen_range(2..5usize);
        let (data, len) = mushroom_like(n, groups, seed);
        let k = rng.gen_range(2..5usize).min(len);
        let mut budget = RunBudget::unlimited();
        match rng.gen_range(0..5usize) {
            0 => budget = budget.steps(rng.gen_range(0..32u64)),
            1 => budget = budget.wall(Duration::from_nanos(rng.gen_range(0..2_000_000u64))),
            2 => budget = budget.memory(rng.gen_range(1..100_000u64)),
            3 => {
                budget = budget
                    .steps(rng.gen_range(0..16u64))
                    .memory(rng.gen_range(1..50_000u64));
            }
            _ => {} // unlimited: must complete
        }
        let guard = Guard::new(budget);
        if rng.gen_bool(0.1) {
            guard.cancel_token().cancel();
        }
        let theta = rng.gen_range(0.3..0.9);
        let sample = if rng.gen_bool(0.5) {
            SampleStrategy::All
        } else {
            SampleStrategy::Fixed(rng.gen_range(k..len.max(k + 1)))
        };
        let outcome = RockBuilder::new(k, theta)
            .sample(sample)
            .seed(seed)
            .build()
            .fit_guarded(&data, &Observer::new(), &guard)
            .unwrap_or_else(|e| panic!("seed {seed}: unexpected error {e}"));
        assert_valid_partition(outcome.model(), len);
        if guard.budget().is_unlimited() && !guard.cancel_token().is_cancelled() {
            assert!(!outcome.is_degraded(), "seed {seed}: nothing should trip");
        }
    }
}

/// Renders a categorical table back to label-first CSV text, `?` for
/// missing cells — the inverse of the loader, for corruption tests.
fn table_to_csv(table: &rock::core::data::CategoricalTable, labels: &[&'static str]) -> String {
    let mut out = String::new();
    for (i, row) in table.rows().enumerate() {
        out.push_str(labels[i]);
        for (j, cell) in row.iter().enumerate() {
            out.push(',');
            match cell {
                Some(code) => {
                    let attr = table
                        .schema()
                        .attribute(AttrId(u16::try_from(j).unwrap()))
                        .unwrap();
                    out.push_str(attr.value(*code).unwrap());
                }
                None => out.push('?'),
            }
        }
        out.push('\n');
    }
    out
}

#[test]
fn poisoned_csv_survives_lenient_ingestion_and_clusters() {
    let (table, classes, _) = MushroomModel::scaled(150, 3).seed(21).generate();
    let clean = table_to_csv(&table, &classes);
    for seed in [1u64, 2, 3] {
        let dirty = FaultInjector::new(seed).poison_rows(&clean, 0.1);
        let cfg = LoadConfig {
            label: LabelPosition::First,
            mode: IngestMode::Lenient {
                max_quarantine_fraction: 0.5,
            },
            ..LoadConfig::default()
        };
        let loaded = parse_labeled(&dirty, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: lenient load failed: {e}"));
        assert_eq!(loaded.table.len(), loaded.labels.len());
        let data = loaded.table.to_transactions();
        let n = data.len();
        let model = RockBuilder::new(3, 0.8)
            .seed(seed)
            .build()
            .fit(&data)
            .unwrap();
        assert_valid_partition(&model, n);
    }
}

#[test]
fn truncated_csv_survives_lenient_ingestion() {
    let (table, classes, _) = MushroomModel::scaled(120, 3).seed(33).generate();
    let clean = table_to_csv(&table, &classes);
    let mut inj = FaultInjector::new(7);
    for keep in [0.85, 0.5, 0.25] {
        let cut = inj.truncate(&clean, keep);
        let cfg = LoadConfig {
            label: LabelPosition::First,
            mode: IngestMode::Lenient {
                max_quarantine_fraction: 0.5,
            },
            ..LoadConfig::default()
        };
        let loaded = parse_labeled(&cut, &cfg).unwrap();
        assert!(!loaded.table.is_empty());
        // At most the final, cut-off record can be quarantined.
        assert!(loaded.report.quarantined.len() <= 1);
    }
}

#[test]
fn injected_io_failures_are_errors_not_panics() {
    let mut inj = FaultInjector::new(11).io_failure_rate(1.0);
    let err = inj
        .read_to_string(std::path::Path::new("/tmp/anything"))
        .unwrap_err();
    assert_eq!(err.exit_code(), 3);
}

/// CLI acceptance criterion: a mushroom-like dataset under an exhausted
/// step budget with `--on-error recover` exits 0, prints the degraded
/// outcome, and writes metrics JSON with a `degradation` block.
#[test]
fn cli_recovers_from_exhausted_step_budget_on_mushroom() {
    let dir = std::env::temp_dir().join("rock-chaos-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("mushroom-like.csv");
    let metrics = dir.join("metrics.json");
    let (table, classes, _) = MushroomModel::scaled(400, 4).seed(3).generate();
    std::fs::write(&input, table_to_csv(&table, &classes)).unwrap();

    let output = std::process::Command::new(env!("CARGO_BIN_EXE_rock-cluster"))
        .args([
            "--input",
            input.to_str().unwrap(),
            "--k",
            "4",
            "--theta",
            "0.8",
            "--label",
            "first",
            "--step-budget",
            "5",
            "--on-error",
            "recover",
            "--metrics",
            metrics.to_str().unwrap(),
            "--seed",
            "3",
        ])
        .output()
        .expect("binary should launch");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "expected exit 0, got {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status.code()
    );
    assert!(
        stdout.contains("degraded:") && stdout.contains("merge-step budget"),
        "stdout should print the degraded outcome, got:\n{stdout}"
    );
    let json = std::fs::read_to_string(&metrics).unwrap();
    assert!(json.contains("\"degradation\""));
    assert!(json.contains("\"reason\": \"step-budget\""));
    assert!(json.contains("\"phase\": \"agglomerate\""));

    // Same budget under --on-error fail: stable exit code 6.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_rock-cluster"))
        .args([
            "--input",
            input.to_str().unwrap(),
            "--k",
            "4",
            "--theta",
            "0.8",
            "--label",
            "first",
            "--step-budget",
            "5",
            "--on-error",
            "fail",
            "--seed",
            "3",
        ])
        .output()
        .expect("binary should launch");
    assert_eq!(output.status.code(), Some(6));

    std::fs::remove_file(input).ok();
    std::fs::remove_file(metrics).ok();
}

// ---------------------------------------------------------------------
// Streaming chaos: the crash-safe out-of-core labeling pipeline
// (`rock_core::stream` + `rock_datasets::cache`). These tests carry the
// `stream_` prefix so `ci.sh` can run them as a named gate.
// ---------------------------------------------------------------------

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rock::core::stream::{partial_path, StreamLabeler, StreamOutcome, WriteProbe};
use rock::datasets::cache::{build_cache, DatasetCache};
use rock::datasets::synthetic::BasketModel;

/// Planted baskets + a snapshot fitted on them: the streaming fixture.
/// 3 clusters over disjoint 15-item pools; θ = 0.2 keeps within-cluster
/// links dense and cross-cluster links absent.
fn stream_fixture(rows: usize) -> (TransactionSet, ModelSnapshot) {
    let (data, _) = BasketModel::disjoint(3, rows / 3, 15, (5, 8))
        .seed(7)
        .generate();
    let labeling = LabelingConfig {
        representative_fraction: 0.05,
        max_representatives: 12,
    };
    let model = RockBuilder::new(3, 0.2)
        .sample(SampleStrategy::All)
        .labeling(labeling)
        .seed(7)
        .build()
        .fit(&data)
        .expect("fit fixture");
    let snapshot = ModelSnapshot::from_model(
        &data,
        &model,
        0.2,
        MarketBasket.f(0.2),
        SimilarityKind::Jaccard,
        OutlierPolicy::Mark,
        &labeling,
        7,
    )
    .expect("snapshot");
    (data, snapshot)
}

fn chaos_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rock-chaos-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Parses a `rock-assignments v1` file and checks internal consistency:
/// header counts match the body, every index appears exactly once.
fn assert_valid_assignments(path: &std::path::Path) -> (usize, usize) {
    let text = std::fs::read_to_string(path).expect("assignments file");
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("rock-assignments v1"));
    let header = lines.next().expect("header line");
    let mut n = 0usize;
    let mut outliers = 0usize;
    for field in header.split_whitespace() {
        if let Some(v) = field.strip_prefix("n=") {
            n = v.parse().unwrap();
        } else if let Some(v) = field.strip_prefix("outliers=") {
            outliers = v.parse().unwrap();
        }
    }
    let mut seen_outliers = 0usize;
    for (i, line) in lines.enumerate() {
        let (idx, label) = line.split_once(' ').expect("row line");
        assert_eq!(idx.parse::<usize>().unwrap(), i, "row indices in order");
        if label == "-" {
            seen_outliers += 1;
        } else {
            label.parse::<usize>().expect("cluster id");
        }
        assert!(i < n, "more rows than the header's n={n}");
    }
    assert_eq!(seen_outliers, outliers, "header outlier count matches body");
    (n, outliers)
}

/// The central crash-safety contract: kill the stream at *every* chunk
/// boundary, resume, and require output byte-identical to an
/// uninterrupted run.
#[test]
fn stream_kill_at_every_chunk_boundary_resumes_byte_identical() {
    let dir = chaos_dir("kill-resume");
    let (data, snapshot) = stream_fixture(240);
    let cache =
        build_cache(&dir.join("d.rockcache"), data.universe(), 40, data.iter()).expect("cache");
    let chunks = 6;
    assert_eq!(cache.total_chunks(), chunks);

    let reference = dir.join("reference.rockassign");
    let outcome = StreamLabeler::new(&snapshot)
        .run(
            &cache,
            &reference,
            &dir.join("ref.ckpt"),
            &Guard::unlimited(),
            &Observer::new(),
        )
        .expect("reference run");
    assert!(matches!(outcome, StreamOutcome::Complete(_)));
    let reference_bytes = std::fs::read(&reference).unwrap();

    for kill_after in 1..chunks {
        let out = dir.join(format!("kill{kill_after}.rockassign"));
        let ckpt = dir.join(format!("kill{kill_after}.ckpt"));
        let paused = StreamLabeler::new(&snapshot)
            .stop_after_chunks(kill_after)
            .run(&cache, &out, &ckpt, &Guard::unlimited(), &Observer::new())
            .expect("paused run");
        assert!(
            matches!(paused, StreamOutcome::Paused(_)),
            "kill_after={kill_after}: expected a pause, got {paused:?}"
        );
        assert!(ckpt.exists(), "pause must leave its checkpoint behind");

        let observer = Observer::new();
        let resumed = StreamLabeler::new(&snapshot)
            .run(&cache, &out, &ckpt, &Guard::unlimited(), &observer)
            .expect("resumed run");
        let StreamOutcome::Complete(stats) = resumed else {
            panic!("kill_after={kill_after}: resume must complete, got {resumed:?}");
        };
        assert!(stats.resumed);
        assert_eq!(
            observer.counters().stream_resumes.load(Ordering::Relaxed),
            1
        );
        assert_eq!(
            std::fs::read(&out).unwrap(),
            reference_bytes,
            "kill_after={kill_after}: resumed output must be byte-identical"
        );
        assert!(!ckpt.exists(), "completion must remove the checkpoint");
        assert!(!partial_path(&out).exists(), "and the partial file");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A memory-budget trip mid-stream degrades to a *valid* partial
/// labeling (machine-readable `Degradation`), keeps the checkpoint, and
/// a rerun finishes the job byte-identically.
#[test]
fn stream_memory_ceiling_trips_to_valid_partial_labeling() {
    let dir = chaos_dir("mem-trip");
    let (data, snapshot) = stream_fixture(240);
    let cache =
        build_cache(&dir.join("d.rockcache"), data.universe(), 40, data.iter()).expect("cache");

    let out = dir.join("budgeted.rockassign");
    let ckpt = dir.join("budgeted.ckpt");
    // Get two chunks durably done first (the state a healthy run reaches
    // before the machine comes under memory pressure)…
    let paused = StreamLabeler::new(&snapshot)
        .stop_after_chunks(2)
        .run(&cache, &out, &ckpt, &Guard::unlimited(), &Observer::new())
        .expect("healthy prefix");
    assert!(matches!(paused, StreamOutcome::Paused(_)));
    // …then resume under a ceiling of 8 bytes, which cannot hold the next
    // chunk's buffer: the honest accounting must trip mid-stream.
    let guard = Guard::new(RunBudget::unlimited().memory(8));
    let outcome = StreamLabeler::new(&snapshot)
        .run(&cache, &out, &ckpt, &guard, &Observer::new())
        .expect("budgeted run must degrade, not error");
    let StreamOutcome::Degraded { stats, degradation } = outcome else {
        panic!("expected a degraded outcome, got {outcome:?}");
    };
    assert!(
        matches!(degradation.reason, TripReason::MemoryBudget { .. }),
        "unexpected trip reason: {:?}",
        degradation.reason
    );
    assert_eq!(degradation.phase, Phase::Labeling);
    assert!(
        stats.rows >= 80 && stats.rows < 240,
        "the trip must cut the stream short past the durable prefix, got {} rows",
        stats.rows
    );

    // The partial output is complete and well-formed for the rows done.
    let (n, _) = assert_valid_assignments(&out);
    assert_eq!(n as u64, stats.rows);
    assert!(ckpt.exists(), "degrade must keep the checkpoint for resume");
    assert!(partial_path(&out).exists(), "and the partial body");

    // Rerun without the ceiling: resumes and matches a clean one-shot run.
    let resumed = StreamLabeler::new(&snapshot)
        .run(&cache, &out, &ckpt, &Guard::unlimited(), &Observer::new())
        .expect("resume");
    assert!(matches!(resumed, StreamOutcome::Complete(_)));
    let clean = dir.join("clean.rockassign");
    StreamLabeler::new(&snapshot)
        .run(
            &cache,
            &clean,
            &dir.join("clean.ckpt"),
            &Guard::unlimited(),
            &Observer::new(),
        )
        .expect("clean run");
    assert_eq!(std::fs::read(&out).unwrap(), std::fs::read(&clean).unwrap());
    std::fs::remove_dir_all(&dir).ok();
}

/// Corrupt or mismatched recovery state fails closed with the stable
/// malformed-input exit code (4) — never a panic, never silent reuse.
#[test]
fn stream_corrupt_recovery_state_fails_closed() {
    let dir = chaos_dir("corrupt-ckpt");
    let (data, snapshot) = stream_fixture(240);
    let cache =
        build_cache(&dir.join("d.rockcache"), data.universe(), 40, data.iter()).expect("cache");
    let out = dir.join("out.rockassign");
    let ckpt = dir.join("out.ckpt");
    let pause = |out: &std::path::Path, ckpt: &std::path::Path| {
        // Each scenario starts from a fresh pause: clear the previous
        // scenario's (deliberately damaged) working files first.
        std::fs::remove_file(out).ok();
        std::fs::remove_file(ckpt).ok();
        std::fs::remove_file(partial_path(out)).ok();
        let paused = StreamLabeler::new(&snapshot)
            .stop_after_chunks(2)
            .run(&cache, out, ckpt, &Guard::unlimited(), &Observer::new())
            .expect("paused run");
        assert!(matches!(paused, StreamOutcome::Paused(_)));
    };

    // (a) Bit-flip inside the checkpoint: checksum mismatch.
    pause(&out, &ckpt);
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let at = bytes.len() / 2;
    bytes[at] ^= 0x20;
    std::fs::write(&ckpt, &bytes).unwrap();
    let err = StreamLabeler::new(&snapshot)
        .run(&cache, &out, &ckpt, &Guard::unlimited(), &Observer::new())
        .expect_err("corrupt checkpoint must fail");
    assert_eq!(err.exit_code(), 4, "corrupt checkpoint: {err}");

    // (b) Truncated checkpoint: parse failure.
    std::fs::remove_file(&out).ok();
    std::fs::remove_file(partial_path(&out)).ok();
    pause(&out, &ckpt);
    let bytes = std::fs::read(&ckpt).unwrap();
    std::fs::write(&ckpt, &bytes[..bytes.len() / 3]).unwrap();
    let err = StreamLabeler::new(&snapshot)
        .run(&cache, &out, &ckpt, &Guard::unlimited(), &Observer::new())
        .expect_err("truncated checkpoint must fail");
    assert_eq!(err.exit_code(), 4, "truncated checkpoint: {err}");

    // (c) Checkpoint from a different dataset: identity mismatch.
    std::fs::remove_file(&out).ok();
    std::fs::remove_file(partial_path(&out)).ok();
    pause(&out, &ckpt);
    let (other, _) = BasketModel::disjoint(3, 80, 15, (5, 8)).seed(8).generate();
    let other_cache = build_cache(
        &dir.join("other.rockcache"),
        other.universe(),
        40,
        other.iter(),
    )
    .expect("other cache");
    let err = StreamLabeler::new(&snapshot)
        .run(
            &other_cache,
            &out,
            &ckpt,
            &Guard::unlimited(),
            &Observer::new(),
        )
        .expect_err("checkpoint against the wrong cache must fail");
    assert_eq!(err.exit_code(), 4, "wrong cache: {err}");

    // (d) Corrupt cache chunk payload: detected on read, exit 4.
    let cache_path = dir.join("d.rockcache");
    let mut bytes = std::fs::read(&cache_path).unwrap();
    bytes[64] ^= 0xff; // inside chunk 0's payload
    std::fs::write(&cache_path, &bytes).unwrap();
    let reopened = DatasetCache::open(&cache_path).expect("directory still valid");
    let err = StreamLabeler::new(&snapshot)
        .retry(RetryPolicy::none())
        .run(
            &reopened,
            &dir.join("c.rockassign"),
            &dir.join("c.ckpt"),
            &Guard::unlimited(),
            &Observer::new(),
        )
        .expect_err("corrupt chunk must fail");
    assert_eq!(err.exit_code(), 4, "corrupt chunk: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Injected disk faults on both the read path (cache chunk reads) and
/// the write path (partial/checkpoint writes) are retried with backoff
/// and the stream still completes with byte-identical output; the
/// retries are visible in the `io_retries` counter.
#[test]
fn stream_disk_faults_are_retried_to_byte_identical_completion() {
    let dir = chaos_dir("disk-faults");
    let (data, snapshot) = stream_fixture(240);
    let cache_path = dir.join("d.rockcache");
    let cache = build_cache(&cache_path, data.universe(), 40, data.iter()).expect("cache");

    let clean = dir.join("clean.rockassign");
    StreamLabeler::new(&snapshot)
        .run(
            &cache,
            &clean,
            &dir.join("clean.ckpt"),
            &Guard::unlimited(),
            &Observer::new(),
        )
        .expect("clean run");

    // Reads: seeded injector fails ~40% of chunk reads. Writes: a probe
    // driven by a second injector fails ~40% of probes. A retry budget of
    // 12 attempts with deterministic backoff rides out both.
    let faulty = DatasetCache::open(&cache_path)
        .expect("reopen")
        .with_fault_injector(FaultInjector::new(21).io_failure_rate(0.4));
    let write_faults = Mutex::new(FaultInjector::new(22).io_failure_rate(0.4));
    let probe: WriteProbe = Arc::new(move |path: &std::path::Path| {
        write_faults
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .fail_io(path)
    });
    let observer = Observer::new();
    let out = dir.join("faulty.rockassign");
    let outcome = StreamLabeler::new(&snapshot)
        .retry(RetryPolicy {
            max_attempts: 12,
            base_delay_ms: 0, // keep the test fast; backoff math is unit-tested
            max_delay_ms: 0,
        })
        .write_probe(probe)
        .run(
            &faulty,
            &out,
            &dir.join("faulty.ckpt"),
            &Guard::unlimited(),
            &observer,
        )
        .expect("faulty run must still complete");
    assert!(matches!(outcome, StreamOutcome::Complete(_)));
    let retries = observer.counters().io_retries.load(Ordering::Relaxed);
    assert!(retries > 0, "a 40% fault rate must force retries");
    assert_eq!(
        std::fs::read(&out).unwrap(),
        std::fs::read(&clean).unwrap(),
        "faults + retries must not change the output"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Exhausted retries surface `RockError::Io` (exit 3), keep the
/// checkpoint, and a healthy rerun completes from where it left off.
#[test]
fn stream_exhausted_retries_keep_checkpoint_for_healthy_rerun() {
    let dir = chaos_dir("exhausted");
    let (data, snapshot) = stream_fixture(240);
    let cache_path = dir.join("d.rockcache");
    let cache = build_cache(&cache_path, data.universe(), 40, data.iter()).expect("cache");

    // Probe: succeed for the first 3 calls, then fail forever — the
    // stream gets partway, then every retry attempt is exhausted.
    let calls = AtomicU64::new(0);
    let probe: WriteProbe = Arc::new(move |path: &std::path::Path| {
        if calls.fetch_add(1, Ordering::Relaxed) < 3 {
            Ok(())
        } else {
            Err(RockError::Io {
                path: path.display().to_string(),
                message: "injected persistent write failure".to_owned(),
            })
        }
    });
    let out = dir.join("out.rockassign");
    let ckpt = dir.join("out.ckpt");
    let err = StreamLabeler::new(&snapshot)
        .retry(RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 0,
            max_delay_ms: 0,
        })
        .write_probe(probe)
        .run(&cache, &out, &ckpt, &Guard::unlimited(), &Observer::new())
        .expect_err("persistent faults must surface after retries");
    assert_eq!(
        err.exit_code(),
        3,
        "exhausted retries are I/O errors: {err}"
    );
    assert!(ckpt.exists(), "the checkpoint survives the failure");

    let resumed = StreamLabeler::new(&snapshot)
        .run(&cache, &out, &ckpt, &Guard::unlimited(), &Observer::new())
        .expect("healthy rerun");
    let StreamOutcome::Complete(stats) = resumed else {
        panic!("healthy rerun must complete, got {resumed:?}");
    };
    assert!(stats.resumed, "the rerun must pick up the checkpoint");
    assert_eq!(stats.rows, 240);
    assert_valid_assignments(&out);
    std::fs::remove_dir_all(&dir).ok();
}

/// CLI acceptance criterion for streaming: `label --stream` under a
/// starvation memory budget exits 6 leaving a valid partial labeling and
/// a checkpoint; rerunning without the budget resumes and produces output
/// byte-identical to the batch `label` path.
#[test]
fn stream_cli_mem_budget_degrades_exit_6_then_resumes() {
    let dir = chaos_dir("cli-stream");
    let input = dir.join("baskets.txt");
    let mut text = String::new();
    for ci in 0..2 {
        for i in 0..40 {
            // Two anchor items pin each cluster; three rotating items keep
            // rows distinct. Within-cluster Jaccard ≥ 0.25, across = 0.
            text.push_str(&format!(
                "c{ci}a0 c{ci}a1 c{ci}x{} c{ci}x{} c{ci}x{}\n",
                i % 7,
                (i + 1) % 7,
                (i + 3) % 7,
            ));
        }
    }
    // The third cluster's rows are ~6x wider (30 shared anchors + one
    // rotating item). They sit at the *end* of the file, so the stream's
    // chunk-buffer high-water mark jumps only when it reaches them —
    // which makes a memory budget sized for the narrow chunks trip
    // mid-stream, after several checkpoints are already durable.
    for i in 0..40 {
        for a in 0..30 {
            text.push_str(&format!("c2a{a} "));
        }
        text.push_str(&format!("c2x{}\n", i % 7));
    }
    std::fs::write(&input, text).unwrap();

    // Fit and save a snapshot with the shipped binary.
    let model = dir.join("baskets.rockmodel");
    let fit = std::process::Command::new(env!("CARGO_BIN_EXE_rock-cluster"))
        .args([
            "--input",
            input.to_str().unwrap(),
            "--format",
            "basket",
            "--k",
            "3",
            "--theta",
            "0.2",
            "--seed",
            "9",
            "--save-model",
            model.to_str().unwrap(),
        ])
        .output()
        .expect("fit should launch");
    assert!(
        fit.status.success(),
        "{}",
        String::from_utf8_lossy(&fit.stderr)
    );

    // Batch reference labeling.
    let batch = dir.join("batch.txt");
    let label = |extra: &[&str]| {
        let mut args = vec![
            "label",
            "--model",
            model.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--format",
            "basket",
        ];
        args.extend_from_slice(extra);
        std::process::Command::new(env!("CARGO_BIN_EXE_rock-cluster"))
            .args(&args)
            .output()
            .expect("label should launch")
    };
    let out = label(&["--output", batch.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Streamed labeling under a memory ceiling sized for the narrow
    // chunks (~1.3 KiB buffers) but not the wide ones (~5 KiB): the run
    // labels the narrow prefix, then degrades — exit 6, valid partial
    // output, checkpoint kept.
    let streamed = dir.join("streamed.txt");
    let ckpt = dir.join("streamed.ckpt");
    let out = label(&[
        "--output",
        streamed.to_str().unwrap(),
        "--stream",
        "--chunk-rows",
        "30",
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--mem-budget",
        "3500",
    ]);
    assert_eq!(
        out.status.code(),
        Some(6),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("checkpoint kept"),
        "stderr should advertise the resume path:\n{stderr}"
    );
    let (n, _) = assert_valid_assignments(&streamed);
    assert!(
        n > 0 && n < 120,
        "the trip must leave a partial labeling, got n={n}"
    );
    assert!(ckpt.exists());

    // Rerun without the ceiling: resumes to completion, byte-identical
    // to the batch path.
    let out = label(&[
        "--output",
        streamed.to_str().unwrap(),
        "--stream",
        "--chunk-rows",
        "30",
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("(resumed)"),
        "the rerun must resume from the checkpoint, not restart"
    );
    assert!(!ckpt.exists(), "completion removes the checkpoint");
    assert_eq!(
        std::fs::read(&streamed).unwrap(),
        std::fs::read(&batch).unwrap(),
        "streamed (degraded + resumed) output must match batch labeling"
    );
    std::fs::remove_dir_all(&dir).ok();
}
