//! Chaos suite: deterministic fault injection against the full pipeline.
//!
//! The contract under test: **no input corruption, budget exhaustion, or
//! cancellation may panic, and every degraded outcome is a valid
//! partition** — assignments, clusters and outliers mutually consistent
//! and covering every point. Faults are injected three ways, all seeded:
//!
//! * `Guard::inject_trip_at` forces a budget trip at a chosen phase;
//! * real budgets (steps / deadline / memory / cancellation) trip on
//!   their own;
//! * `FaultInjector` poisons or truncates CSV text and injects I/O
//!   failures ahead of the pipeline.
//!
//! The final test drives the shipped `rock-cluster` binary end to end on
//! a mushroom-like dataset with an exhausted step budget and
//! `--on-error recover`, pinning the CLI acceptance criterion: exit 0, a
//! printed degraded outcome, and a `degradation` block in the metrics
//! JSON.

use std::time::Duration;

use rock::core::data::AttrId;
use rock::core::telemetry::Phase;
use rock::datasets::fault::FaultInjector;
use rock::datasets::loader::{parse_labeled, IngestMode, LabelPosition, LoadConfig};
use rock::datasets::synthetic::MushroomModel;
use rock::prelude::*;

/// Asserts the partition invariants that must hold on *every* outcome,
/// complete or degraded: clusters and outliers tile the point set, and
/// assignments agree with cluster membership.
fn assert_valid_partition(model: &RockModel, n: usize) {
    assert_eq!(model.assignments().len(), n);
    let clustered: usize = model.clusters().iter().map(Vec::len).sum();
    assert_eq!(
        clustered + model.outliers().len(),
        n,
        "clusters + outliers must cover all {n} points exactly once"
    );
    for &o in model.outliers() {
        assert!(
            model.assignments()[o as usize].is_none(),
            "outlier {o} must be unassigned"
        );
    }
    let mut seen = vec![false; n];
    for (c, members) in model.clusters().iter().enumerate() {
        for &p in members {
            assert!(!seen[p as usize], "point {p} appears in two clusters");
            seen[p as usize] = true;
            assert_eq!(
                model.assignments()[p as usize].map(|id| id.0 as usize),
                Some(c)
            );
        }
    }
}

fn mushroom_like(n: usize, groups: usize, seed: u64) -> (TransactionSet, usize) {
    let (table, _, _) = MushroomModel::scaled(n, groups).seed(seed).generate();
    let data = table.to_transactions();
    let len = data.len();
    (data, len)
}

#[test]
fn injected_trips_at_every_phase_degrade_cleanly() {
    let (data, n) = mushroom_like(240, 4, 5);
    for phase in Phase::ALL {
        let guard = Guard::unlimited().inject_trip_at(phase);
        let outcome = RockBuilder::new(4, 0.8)
            .sample(SampleStrategy::Fixed(120))
            .seed(5)
            .build()
            .fit_guarded(&data, &Observer::new(), &guard)
            .unwrap_or_else(|e| panic!("injection at {phase:?} errored: {e}"));
        assert!(outcome.is_degraded(), "injection at {phase:?} must degrade");
        let d = outcome.degradation().unwrap();
        assert_eq!(d.phase, phase);
        assert_eq!(d.reason, TripReason::Injected);
        assert_valid_partition(outcome.model(), n);
    }
}

#[test]
fn tripped_runs_still_flush_a_parseable_trace() {
    // `fit_guarded` flushes the rock-trace/v1 stream on every exit path,
    // so a budget trip at *any* phase must leave a truncated but
    // canonical (validate-clean) trace behind — the mid-flight spans of
    // the tripped phase are simply absent, never half-written.
    use rock::core::telemetry::trace::validate;
    let dir = std::env::temp_dir().join("rock-chaos-trace-test");
    std::fs::create_dir_all(&dir).unwrap();
    let (data, n) = mushroom_like(240, 4, 5);
    for phase in Phase::ALL {
        let path = dir.join(format!("trip-{phase:?}.trace"));
        std::fs::remove_file(&path).ok();
        let guard = Guard::unlimited().inject_trip_at(phase);
        let outcome = RockBuilder::new(4, 0.8)
            .sample(SampleStrategy::Fixed(120))
            .seed(5)
            .trace(&path)
            .build()
            .fit_guarded(&data, &Observer::new(), &guard)
            .unwrap_or_else(|e| panic!("injection at {phase:?} errored: {e}"));
        assert!(outcome.is_degraded(), "injection at {phase:?} must degrade");
        assert_valid_partition(outcome.model(), n);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("trip at {phase:?} left no trace: {e}"));
        let summary = validate(&text)
            .unwrap_or_else(|e| panic!("trip at {phase:?} left a non-canonical trace: {e}"));
        assert!(
            summary.spans >= 1,
            "trip at {phase:?}: at least the completed phases must have spans"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn real_budgets_trip_and_degrade() {
    let (data, n) = mushroom_like(200, 4, 9);
    let rock = RockBuilder::new(4, 0.8).seed(9).build();

    // Step budget.
    let guard = Guard::new(RunBudget::unlimited().steps(10));
    let outcome = rock.fit_guarded(&data, &Observer::new(), &guard).unwrap();
    assert!(outcome.is_degraded());
    assert_eq!(outcome.model().stats().merges, 10);
    assert_valid_partition(outcome.model(), n);

    // Zero deadline trips at the first checkpoint.
    let guard = Guard::new(RunBudget::unlimited().wall(Duration::ZERO));
    let outcome = rock.fit_guarded(&data, &Observer::new(), &guard).unwrap();
    assert!(matches!(
        outcome.degradation().unwrap().reason,
        TripReason::Deadline { .. }
    ));
    assert_valid_partition(outcome.model(), n);

    // A one-byte memory ceiling trips once any gauge reports.
    let guard = Guard::new(RunBudget::unlimited().memory(1));
    let outcome = rock.fit_guarded(&data, &Observer::new(), &guard).unwrap();
    assert!(matches!(
        outcome.degradation().unwrap().reason,
        TripReason::MemoryBudget { .. }
    ));
    assert_valid_partition(outcome.model(), n);

    // Cancellation before the run starts.
    let guard = Guard::unlimited();
    guard.cancel_token().cancel();
    let outcome = rock.fit_guarded(&data, &Observer::new(), &guard).unwrap();
    assert_eq!(outcome.degradation().unwrap().reason, TripReason::Cancelled);
    assert_valid_partition(outcome.model(), n);
}

#[test]
fn memory_budget_trips_mid_link_phase_under_parallel_workers() {
    // The sharded link kernel streams its stored-entry bytes into the
    // memory gauge and polls the guard from every worker, so a ceiling
    // crossed *while* the table grows must stop the run inside the
    // Links phase — not at the next boundary — and still yield a valid
    // degraded partition.
    let (data, n) = mushroom_like(600, 4, 11);
    let build = || {
        RockBuilder::new(4, 0.8)
            .sample(SampleStrategy::All)
            .threads(4)
            .seed(11)
            .build()
    };
    // Measure the neighbor graph's footprint on an identical run, then
    // allow only a sliver beyond it: the link table cannot fit.
    let observer = Observer::new();
    build().fit_observed(&data, &observer).unwrap();
    let neighbor_bytes = observer.memory().snapshot().neighbor_graph;
    assert!(neighbor_bytes > 0);

    let guard = Guard::new(RunBudget::unlimited().memory(neighbor_bytes + 512));
    let outcome = build()
        .fit_guarded(&data, &Observer::new(), &guard)
        .unwrap();
    assert!(outcome.is_degraded());
    let d = outcome.degradation().unwrap();
    assert_eq!(d.phase, Phase::Links);
    assert!(matches!(d.reason, TripReason::MemoryBudget { .. }));
    assert_valid_partition(outcome.model(), n);
}

#[test]
fn degraded_prefix_agrees_with_unbudgeted_run() {
    // The anytime property, end to end: a step-budgeted run's merges are a
    // prefix of the unbudgeted run's, so its sample-phase history matches.
    let (data, _) = mushroom_like(160, 4, 13);
    let rock = RockBuilder::new(4, 0.8)
        .seed(13)
        .record_history(true)
        .build();
    let full = rock.fit(&data).unwrap();
    let guard = Guard::new(RunBudget::unlimited().steps(7));
    let partial = rock
        .fit_guarded(&data, &Observer::new(), &guard)
        .unwrap()
        .into_model();
    assert_eq!(partial.history().len(), 7);
    assert_eq!(&full.history()[..7], partial.history());
}

/// Satellite: seed-loop fuzz-lite. 64 seeded random datasets through the
/// guarded pipeline under randomized budgets — the run may complete or
/// degrade, but must never panic and must always return a valid
/// partition.
#[test]
fn fuzz_lite_64_seeds_under_random_budgets() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0x0c1a05 ^ seed);
        let n = rng.gen_range(24..96usize);
        let groups = rng.gen_range(2..5usize);
        let (data, len) = mushroom_like(n, groups, seed);
        let k = rng.gen_range(2..5usize).min(len);
        let mut budget = RunBudget::unlimited();
        match rng.gen_range(0..5usize) {
            0 => budget = budget.steps(rng.gen_range(0..32u64)),
            1 => budget = budget.wall(Duration::from_nanos(rng.gen_range(0..2_000_000u64))),
            2 => budget = budget.memory(rng.gen_range(1..100_000u64)),
            3 => {
                budget = budget
                    .steps(rng.gen_range(0..16u64))
                    .memory(rng.gen_range(1..50_000u64));
            }
            _ => {} // unlimited: must complete
        }
        let guard = Guard::new(budget);
        if rng.gen_bool(0.1) {
            guard.cancel_token().cancel();
        }
        let theta = rng.gen_range(0.3..0.9);
        let sample = if rng.gen_bool(0.5) {
            SampleStrategy::All
        } else {
            SampleStrategy::Fixed(rng.gen_range(k..len.max(k + 1)))
        };
        let outcome = RockBuilder::new(k, theta)
            .sample(sample)
            .seed(seed)
            .build()
            .fit_guarded(&data, &Observer::new(), &guard)
            .unwrap_or_else(|e| panic!("seed {seed}: unexpected error {e}"));
        assert_valid_partition(outcome.model(), len);
        if guard.budget().is_unlimited() && !guard.cancel_token().is_cancelled() {
            assert!(!outcome.is_degraded(), "seed {seed}: nothing should trip");
        }
    }
}

/// Renders a categorical table back to label-first CSV text, `?` for
/// missing cells — the inverse of the loader, for corruption tests.
fn table_to_csv(table: &rock::core::data::CategoricalTable, labels: &[&'static str]) -> String {
    let mut out = String::new();
    for (i, row) in table.rows().enumerate() {
        out.push_str(labels[i]);
        for (j, cell) in row.iter().enumerate() {
            out.push(',');
            match cell {
                Some(code) => {
                    let attr = table
                        .schema()
                        .attribute(AttrId(u16::try_from(j).unwrap()))
                        .unwrap();
                    out.push_str(attr.value(*code).unwrap());
                }
                None => out.push('?'),
            }
        }
        out.push('\n');
    }
    out
}

#[test]
fn poisoned_csv_survives_lenient_ingestion_and_clusters() {
    let (table, classes, _) = MushroomModel::scaled(150, 3).seed(21).generate();
    let clean = table_to_csv(&table, &classes);
    for seed in [1u64, 2, 3] {
        let dirty = FaultInjector::new(seed).poison_rows(&clean, 0.1);
        let cfg = LoadConfig {
            label: LabelPosition::First,
            mode: IngestMode::Lenient {
                max_quarantine_fraction: 0.5,
            },
            ..LoadConfig::default()
        };
        let loaded = parse_labeled(&dirty, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: lenient load failed: {e}"));
        assert_eq!(loaded.table.len(), loaded.labels.len());
        let data = loaded.table.to_transactions();
        let n = data.len();
        let model = RockBuilder::new(3, 0.8)
            .seed(seed)
            .build()
            .fit(&data)
            .unwrap();
        assert_valid_partition(&model, n);
    }
}

#[test]
fn truncated_csv_survives_lenient_ingestion() {
    let (table, classes, _) = MushroomModel::scaled(120, 3).seed(33).generate();
    let clean = table_to_csv(&table, &classes);
    let mut inj = FaultInjector::new(7);
    for keep in [0.85, 0.5, 0.25] {
        let cut = inj.truncate(&clean, keep);
        let cfg = LoadConfig {
            label: LabelPosition::First,
            mode: IngestMode::Lenient {
                max_quarantine_fraction: 0.5,
            },
            ..LoadConfig::default()
        };
        let loaded = parse_labeled(&cut, &cfg).unwrap();
        assert!(!loaded.table.is_empty());
        // At most the final, cut-off record can be quarantined.
        assert!(loaded.report.quarantined.len() <= 1);
    }
}

#[test]
fn injected_io_failures_are_errors_not_panics() {
    let mut inj = FaultInjector::new(11).io_failure_rate(1.0);
    let err = inj
        .read_to_string(std::path::Path::new("/tmp/anything"))
        .unwrap_err();
    assert_eq!(err.exit_code(), 3);
}

/// CLI acceptance criterion: a mushroom-like dataset under an exhausted
/// step budget with `--on-error recover` exits 0, prints the degraded
/// outcome, and writes metrics JSON with a `degradation` block.
#[test]
fn cli_recovers_from_exhausted_step_budget_on_mushroom() {
    let dir = std::env::temp_dir().join("rock-chaos-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("mushroom-like.csv");
    let metrics = dir.join("metrics.json");
    let (table, classes, _) = MushroomModel::scaled(400, 4).seed(3).generate();
    std::fs::write(&input, table_to_csv(&table, &classes)).unwrap();

    let output = std::process::Command::new(env!("CARGO_BIN_EXE_rock-cluster"))
        .args([
            "--input",
            input.to_str().unwrap(),
            "--k",
            "4",
            "--theta",
            "0.8",
            "--label",
            "first",
            "--step-budget",
            "5",
            "--on-error",
            "recover",
            "--metrics",
            metrics.to_str().unwrap(),
            "--seed",
            "3",
        ])
        .output()
        .expect("binary should launch");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "expected exit 0, got {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status.code()
    );
    assert!(
        stdout.contains("degraded:") && stdout.contains("merge-step budget"),
        "stdout should print the degraded outcome, got:\n{stdout}"
    );
    let json = std::fs::read_to_string(&metrics).unwrap();
    assert!(json.contains("\"degradation\""));
    assert!(json.contains("\"reason\": \"step-budget\""));
    assert!(json.contains("\"phase\": \"agglomerate\""));

    // Same budget under --on-error fail: stable exit code 6.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_rock-cluster"))
        .args([
            "--input",
            input.to_str().unwrap(),
            "--k",
            "4",
            "--theta",
            "0.8",
            "--label",
            "first",
            "--step-budget",
            "5",
            "--on-error",
            "fail",
            "--seed",
            "3",
        ])
        .output()
        .expect("binary should launch");
    assert_eq!(output.status.code(), Some(6));

    std::fs::remove_file(input).ok();
    std::fs::remove_file(metrics).ok();
}
