//! Loopback smoke test for `rock-serve`: ten thousand `/label`
//! requests, sequential and concurrent, with zero dropped responses
//! and labels identical to the offline `rock-cluster label` batch
//! path over the same snapshot.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

use rock::core::data::{AttrId, ClusterId};
use rock::core::export::read_assignments;
use rock::core::snapshot::ModelSnapshot;
use rock::core::telemetry::json::{escape, Json};
use rock::datasets::synthetic::MushroomModel;
use rock_serve::server::{ServeConfig, Server, ServerHandle};

const RECORDS: usize = 500;
const SEQUENTIAL_PASSES: usize = 4; // 4 × 500 = 2,000 requests
const CONCURRENT_THREADS: usize = 8;
const CONCURRENT_PASSES: usize = 2; // 8 × 2 × 500 = 8,000 requests
const TOTAL: u64 = (SEQUENTIAL_PASSES * RECORDS) as u64
    + (CONCURRENT_THREADS * CONCURRENT_PASSES * RECORDS) as u64;

fn table_to_csv(table: &rock::core::data::CategoricalTable, labels: &[&'static str]) -> String {
    let mut out = String::new();
    for (i, row) in table.rows().enumerate() {
        out.push_str(labels[i]);
        for (j, cell) in row.iter().enumerate() {
            out.push(',');
            match cell {
                Some(code) => {
                    let attr = table
                        .schema()
                        .attribute(AttrId(u16::try_from(j).unwrap()))
                        .unwrap();
                    out.push_str(attr.value(*code).unwrap());
                }
                None => out.push('?'),
            }
        }
        out.push('\n');
    }
    out
}

/// `{"record":["v1","v2",…]}` for row `i` of the table.
fn record_body(table: &rock::core::data::CategoricalTable, i: usize) -> String {
    let row: Vec<Option<u16>> = table.rows().nth(i).unwrap().to_vec();
    let mut body = String::from("{\"record\":[");
    for (j, cell) in row.iter().enumerate() {
        if j > 0 {
            body.push(',');
        }
        let text = match cell {
            Some(code) => table
                .schema()
                .attribute(AttrId(u16::try_from(j).unwrap()))
                .unwrap()
                .value(*code)
                .unwrap(),
            None => "?",
        };
        body.push('"');
        body.push_str(&escape(text));
        body.push('"');
    }
    body.push_str("]}");
    body
}

/// One keep-alive client connection.
struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        Client { stream }
    }

    /// Sends one `/label` request, returns the parsed cluster
    /// (`None` = outlier). Panics on any non-200 or dropped response.
    fn label(&mut self, body: &str) -> Option<u64> {
        let raw = format!(
            "POST /label HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        self.stream.write_all(raw.as_bytes()).unwrap();
        let response = self.read_response();
        assert!(
            response.starts_with("HTTP/1.1 200"),
            "expected 200 for {body:?}, got {response:?}"
        );
        let payload = response.split("\r\n\r\n").nth(1).unwrap().trim();
        let doc = Json::parse(payload).unwrap();
        doc.get("cluster").and_then(Json::as_u64)
    }

    /// Reads one HTTP response using its `Content-Length` framing.
    fn read_response(&mut self) -> String {
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            assert_eq!(
                self.stream.read(&mut byte).unwrap(),
                1,
                "connection closed mid-response (dropped response)"
            );
            head.push(byte[0]);
        }
        let text = String::from_utf8(head.clone()).unwrap();
        let len: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; len];
        self.stream.read_exact(&mut body).unwrap();
        head.extend_from_slice(&body);
        String::from_utf8(head).unwrap()
    }
}

fn fit_and_label_offline(dir: &Path, input: &Path) -> (PathBuf, Vec<Option<ClusterId>>) {
    let model = dir.join("model.rockmodel");
    let output = Command::new(env!("CARGO_BIN_EXE_rock-cluster"))
        .args([
            "--input",
            input.to_str().unwrap(),
            "--k",
            "3",
            "--theta",
            "0.8",
            "--label",
            "first",
            "--seed",
            "42",
            "--save-model",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "fit failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    let labels = dir.join("offline-labels.txt");
    let output = Command::new(env!("CARGO_BIN_EXE_rock-cluster"))
        .args([
            "label",
            "--model",
            model.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--label",
            "first",
            "--output",
            labels.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "offline label failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let expected = read_assignments(BufReader::new(std::fs::File::open(&labels).unwrap())).unwrap();
    std::fs::remove_file(&labels).ok();
    (model, expected)
}

#[test]
fn ten_thousand_loopback_requests_match_offline_labeling() {
    let dir = std::env::temp_dir().join("rock-serve-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("data.csv");
    let (table, classes, _) = MushroomModel::scaled(RECORDS, 3).seed(7).generate();
    std::fs::write(&input, table_to_csv(&table, &classes)).unwrap();

    let (model_path, expected) = fit_and_label_offline(&dir, &input);
    assert_eq!(expected.len(), RECORDS);

    let snapshot = ModelSnapshot::load(&model_path).unwrap();
    // A keep-alive connection occupies its worker for its lifetime, so
    // the pool must cover the peak concurrent-connection count.
    let config = ServeConfig {
        threads: CONCURRENT_THREADS + 1,
        ..ServeConfig::default()
    };
    let handle = Server::start(snapshot, config).unwrap();

    let bodies: Vec<String> = (0..RECORDS).map(|i| record_body(&table, i)).collect();
    let check = |got: Option<u64>, i: usize| {
        let want = expected[i].map(|c| u64::from(c.0));
        assert_eq!(got, want, "record {i}: server and offline labels differ");
    };

    // Sequential phase: one keep-alive connection, every record,
    // several passes.
    let mut client = Client::connect(&handle);
    for _ in 0..SEQUENTIAL_PASSES {
        for (i, body) in bodies.iter().enumerate() {
            check(client.label(body), i);
        }
    }
    drop(client);

    // Concurrent phase: independent connections hammering in parallel.
    std::thread::scope(|scope| {
        for _ in 0..CONCURRENT_THREADS {
            scope.spawn(|| {
                let mut client = Client::connect(&handle);
                for _ in 0..CONCURRENT_PASSES {
                    for (i, body) in bodies.iter().enumerate() {
                        check(client.label(body), i);
                    }
                }
            });
        }
    });

    // Every request was answered (zero drops, zero shed) and the final
    // metrics agree with the request count.
    let counters = handle.counters();
    assert_eq!(counters.labeled + counters.outlier, TOTAL);
    assert_eq!(counters.shed, 0);
    assert_eq!(counters.rejected, 0);

    let metrics = handle.shutdown();
    let doc = Json::parse(&metrics).unwrap();
    let requests = doc.get("requests").unwrap();
    let labeled = requests.get("labeled").and_then(Json::as_u64).unwrap();
    let outlier = requests.get("outlier").and_then(Json::as_u64).unwrap();
    assert_eq!(labeled + outlier, TOTAL);

    // The latency histogram saw every request, and its percentile
    // estimates are ordered and positive.
    let latency = doc.get("latency").unwrap();
    let field = |key: &str| latency.get(key).and_then(Json::as_f64).unwrap();
    assert_eq!(latency.get("count").and_then(Json::as_u64), Some(TOTAL));
    let (p50, p90, p99, max) = (
        field("p50_ms"),
        field("p90_ms"),
        field("p99_ms"),
        field("max_ms"),
    );
    assert!(p50 > 0.0, "p50 must be positive, got {p50}");
    assert!(
        p50 <= p90 && p90 <= p99 && p99 <= max,
        "percentiles must be ordered: {p50} {p90} {p99} {max}"
    );

    std::fs::remove_file(&input).ok();
    std::fs::remove_file(&model_path).ok();
}
