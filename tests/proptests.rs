//! Randomized invariant tests on the core data structures of the
//! clustering pipeline. Each test sweeps a fixed set of seeds through the
//! vendored [`rock::core::rng::Rng`], generating arbitrary inputs and
//! checking properties that must hold for *every* input — the offline,
//! dependency-free replacement for the original proptest suite. Failures
//! print the seed so a case can be replayed by hand.

use rock::core::agglomerate::{agglomerate, AgglomerateConfig};
use rock::core::components::connected_components;
use rock::core::export::{read_assignments, write_assignments};
use rock::core::heap::IndexedHeap;
use rock::core::metrics::{hungarian_max, ContingencyTable};
use rock::core::rng::Rng;
use rock::core::summary::ClusterSummary;
use rock::prelude::*;

/// Seeds swept by every test; each seed is one independent random case.
const CASES: u64 = 64;

fn arb_transaction(rng: &mut Rng, universe: u32, max_len: usize) -> Transaction {
    let len = rng.gen_range(0..=max_len);
    let items: Vec<u32> = (0..len)
        .map(|_| rng.gen_range(0..universe as u64) as u32)
        .collect();
    Transaction::new(items)
}

fn arb_dataset(rng: &mut Rng, max_n: usize, universe: u32, max_len: usize) -> TransactionSet {
    let n = rng.gen_range(1..=max_n);
    let rows: Vec<Transaction> = (0..n)
        .map(|_| arb_transaction(rng, universe, max_len))
        .collect();
    TransactionSet::new(rows, universe as usize)
}

// ── Transactions & similarity ──────────────────────────────────────────

#[test]
fn intersection_is_bounded_and_symmetric() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let a = arb_transaction(&mut rng, 40, 15);
        let b = arb_transaction(&mut rng, 40, 15);
        let ab = a.intersection_len(&b);
        assert_eq!(ab, b.intersection_len(&a), "seed {seed}");
        assert!(ab <= a.len().min(b.len()), "seed {seed}");
        assert_eq!(a.union_len(&b) + ab, a.len() + b.len(), "seed {seed}");
    }
}

#[test]
fn jaccard_properties() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let a = arb_transaction(&mut rng, 30, 12);
        let b = arb_transaction(&mut rng, 30, 12);
        let s = Jaccard.sim(&a, &b);
        assert!((0.0..=1.0).contains(&s), "seed {seed}");
        assert_eq!(s, Jaccard.sim(&b, &a), "seed {seed}");
        assert_eq!(Jaccard.sim(&a, &a), 1.0, "seed {seed}");
        // Dice dominates Jaccard: both rank pairs identically.
        let d = Dice.sim(&a, &b);
        assert!(d >= s || (d - s).abs() < 1e-12, "seed {seed}");
    }
}

// ── Neighbor graph ─────────────────────────────────────────────────────

#[test]
fn neighbor_graph_is_symmetric_and_loopless() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let data = arb_dataset(&mut rng, 30, 25, 8);
        let theta = rng.gen_range(0.05..0.95);
        let g = NeighborGraph::compute(&data, &Jaccard, theta, 1).unwrap();
        for i in 0..g.len() {
            assert!(!g.neighbors(i).contains(&(i as u32)), "seed {seed}");
            for &j in g.neighbors(i) {
                assert!(
                    g.neighbors(j as usize).contains(&(i as u32)),
                    "seed {seed}: edge {i}-{j} not symmetric"
                );
            }
        }
    }
}

#[test]
fn higher_theta_never_adds_neighbors() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let data = arb_dataset(&mut rng, 25, 20, 8);
        let theta = rng.gen_range(0.1..0.8);
        let lo = NeighborGraph::compute(&data, &Jaccard, theta, 1).unwrap();
        let hi = NeighborGraph::compute(&data, &Jaccard, theta + 0.1, 1).unwrap();
        for i in 0..lo.len() {
            assert!(hi.degree(i) <= lo.degree(i), "seed {seed}");
        }
    }
}

// ── Links ──────────────────────────────────────────────────────────────

#[test]
fn links_match_bruteforce() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let data = arb_dataset(&mut rng, 25, 20, 8);
        let theta = rng.gen_range(0.1..0.9);
        let g = NeighborGraph::compute(&data, &Jaccard, theta, 1).unwrap();
        let links = LinkTable::compute(&g);
        for i in 0..g.len() {
            for j in (i + 1)..g.len() {
                let expected = g
                    .neighbors(i)
                    .iter()
                    .filter(|x| g.neighbors(j).contains(x))
                    .count() as u32;
                assert_eq!(links.link(i, j), expected, "seed {seed}: pair {i},{j}");
            }
        }
    }
}

#[test]
fn parallel_links_are_byte_identical_to_sequential() {
    // The sharded kernel must be a pure optimization: same rows, same
    // order, same counts for every thread count (DESIGN.md §13). Sizes
    // start above the tiny-input cutoff so the parallel path really runs.
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let n = rng.gen_range(260..400usize);
        let rows: Vec<Transaction> = (0..n).map(|_| arb_transaction(&mut rng, 30, 8)).collect();
        let data = TransactionSet::new(rows, 30);
        let theta = rng.gen_range(0.1..0.9);
        let g = NeighborGraph::compute(&data, &Jaccard, theta, 1).unwrap();
        let sequential = LinkTable::compute_observed(&g, 1, &Observer::new());
        for threads in [2usize, 4, 8] {
            let parallel = LinkTable::compute_observed(&g, threads, &Observer::new());
            assert_eq!(parallel, sequential, "seed {seed}, threads {threads}");
        }
    }
}

// ── Heap vs reference model ────────────────────────────────────────────

#[test]
fn heap_matches_btreemap_model() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let mut heap: IndexedHeap<u64> = IndexedHeap::new();
        let mut model = std::collections::BTreeMap::new();
        let ops = rng.gen_range(1..=300usize);
        for _ in 0..ops {
            let id = rng.gen_range(0..32u64) as u32;
            let p = rng.gen_range(0..100u64);
            match rng.gen_range(0..3u64) {
                0 => {
                    heap.insert_or_update(id, p);
                    model.insert(id, p);
                }
                1 => {
                    assert_eq!(heap.remove(id), model.remove(&id), "seed {seed}");
                }
                _ => {
                    let got = heap.peek().map(|(p, _)| *p);
                    let expect = model.values().max().copied();
                    assert_eq!(got, expect, "seed {seed}");
                }
            }
            assert_eq!(heap.len(), model.len(), "seed {seed}");
        }
    }
}

// ── Agglomeration invariants ───────────────────────────────────────────

#[test]
fn agglomeration_partitions_points() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let data = arb_dataset(&mut rng, 30, 15, 6);
        let theta = rng.gen_range(0.2..0.8);
        let n = data.len();
        let k = rng.gen_range(1..5usize);
        if k > n {
            continue;
        }
        let g = NeighborGraph::compute(&data, &Jaccard, theta, 1).unwrap();
        let links = LinkTable::compute(&g);
        let good = Goodness::new(theta, &MarketBasket).unwrap();
        let out = agglomerate(n, &links, &good, &AgglomerateConfig::new(k)).unwrap();
        // Clusters form a partition of all n points (no pruning here).
        let mut seen = vec![false; n];
        for members in &out.clusters {
            for &p in members {
                assert!(!seen[p as usize], "seed {seed}: point {p} twice");
                seen[p as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "seed {seed}");
        // At least k clusters (early stop allowed), never fewer.
        assert!(out.clusters.len() >= k, "seed {seed}");
        if out.reached_k {
            assert_eq!(out.clusters.len(), k, "seed {seed}");
        }
        // Merge history consistent with cluster count.
        assert_eq!(out.merges, n - out.clusters.len(), "seed {seed}");
    }
}

#[test]
fn merge_goodness_is_positive_and_monotone_in_links() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let links = rng.gen_range(1..1000u64);
        let ni = rng.gen_range(1..100usize);
        let nj = rng.gen_range(1..100usize);
        let theta = rng.gen_range(0.1..0.9);
        let g = Goodness::new(theta, &MarketBasket).unwrap();
        let a = g.merge_goodness(links, ni, nj);
        let b = g.merge_goodness(links + 1, ni, nj);
        assert!(a > 0.0, "seed {seed}");
        assert!(b > a, "seed {seed}");
        // Symmetric in the cluster sizes (up to fp rounding: the
        // denominator subtracts E(ni) and E(nj) in swapped order).
        let swapped = g.merge_goodness(links, nj, ni);
        assert!(
            (a - swapped).abs() <= 1e-9 * a.abs().max(1.0),
            "seed {seed}"
        );
    }
}

// ── Metrics ────────────────────────────────────────────────────────────

#[test]
fn accuracy_invariant_to_cluster_relabeling() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let n = rng.gen_range(4..40usize);
        let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..3u64) as usize).collect();
        let preds: Vec<Option<u32>> = (0..n)
            .map(|_| Some(rng.gen_range(0..3u64) as u32))
            .collect();
        // Permute cluster ids 0→2, 1→0, 2→1.
        let permuted: Vec<Option<u32>> = preds.iter().map(|p| p.map(|c| (c + 2) % 3)).collect();
        let a = ContingencyTable::new(&preds, &labels).unwrap();
        let b = ContingencyTable::new(&permuted, &labels).unwrap();
        assert!(
            (a.matched_accuracy() - b.matched_accuracy()).abs() < 1e-12,
            "seed {seed}"
        );
        assert!(
            (a.adjusted_rand_index() - b.adjusted_rand_index()).abs() < 1e-9,
            "seed {seed}"
        );
        assert!((a.nmi() - b.nmi()).abs() < 1e-9, "seed {seed}");
    }
}

#[test]
fn hungarian_beats_greedy() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let profit: Vec<Vec<i64>> = (0..4)
            .map(|_| (0..4).map(|_| rng.gen_range(0..50u64) as i64).collect())
            .collect();
        let assign = hungarian_max(&profit);
        let total: i64 = assign.iter().enumerate().map(|(i, &j)| profit[i][j]).sum();
        // Greedy row-by-row baseline.
        let mut used = [false; 4];
        let mut greedy = 0i64;
        for row in &profit {
            let (j, v) = row
                .iter()
                .enumerate()
                .filter(|&(j, _)| !used[j])
                .max_by_key(|&(_, v)| *v)
                .unwrap();
            used[j] = true;
            greedy += v;
        }
        assert!(total >= greedy, "seed {seed}");
        // Assignment is a permutation.
        let mut sorted = assign.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "seed {seed}");
    }
}

#[test]
fn purity_bounds() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let n = rng.gen_range(2..30usize);
        let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..4u64) as usize).collect();
        let preds: Vec<Option<u32>> = labels.iter().map(|&l| Some(l as u32)).collect();
        let t = ContingencyTable::new(&preds, &labels).unwrap();
        // Predicting the truth exactly is perfect under every measure.
        assert_eq!(t.purity(), 1.0, "seed {seed}");
        assert_eq!(t.matched_accuracy(), 1.0, "seed {seed}");
        assert!(t.nmi() > 0.999, "seed {seed}");
    }
}

// ── Sampling ───────────────────────────────────────────────────────────

#[test]
fn sample_indices_are_valid() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let n = rng.gen_range(1..500usize);
        let frac = rng.gen_range(0.01..1.0);
        let size = ((n as f64 * frac).ceil() as usize).clamp(1, n);
        let mut sample_rng = seeded_rng(seed);
        let s = sample_indices(n, size, &mut sample_rng).unwrap();
        assert_eq!(s.len(), size, "seed {seed}");
        assert!(s.windows(2).all(|w| w[0] < w[1]), "seed {seed}");
        assert!(s.iter().all(|&i| i < n), "seed {seed}");
    }
}

#[test]
fn chernoff_bound_monotonicity() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let n = rng.gen_range(100..10_000usize);
        let u_frac = rng.gen_range(0.05..0.5);
        let u = ((n as f64 * u_frac) as usize).max(1);
        let loose = chernoff_sample_size(n, u, 0.25, 0.1).unwrap();
        let tight = chernoff_sample_size(n, u, 0.25, 0.01).unwrap();
        assert!(tight >= loose, "seed {seed}");
        assert!(loose <= n, "seed {seed}");
    }
}

// ── Extension modules ──────────────────────────────────────────────────

#[test]
fn export_roundtrips_arbitrary_assignments() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let n = rng.gen_range(0..200usize);
        let assignments: Vec<Option<ClusterId>> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    Some(ClusterId(rng.gen_range(0..50u64) as u32))
                } else {
                    None
                }
            })
            .collect();
        let mut buf = Vec::new();
        write_assignments(&mut buf, &assignments).unwrap();
        let back = read_assignments(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, assignments, "seed {seed}");
    }
}

#[test]
fn components_partition_all_points() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let data = arb_dataset(&mut rng, 40, 20, 8);
        let theta = rng.gen_range(0.1..0.9);
        let g = NeighborGraph::compute(&data, &Jaccard, theta, 1).unwrap();
        let comps = connected_components(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, data.len(), "seed {seed}");
        let mut seen = vec![false; data.len()];
        for c in &comps {
            for &p in c {
                assert!(!seen[p as usize], "seed {seed}");
                seen[p as usize] = true;
            }
        }
        // Size-sorted.
        assert!(
            comps.windows(2).all(|w| w[0].len() >= w[1].len()),
            "seed {seed}"
        );
        // No edge may cross components.
        let mut comp_of = vec![0usize; data.len()];
        for (ci, c) in comps.iter().enumerate() {
            for &p in c {
                comp_of[p as usize] = ci;
            }
        }
        for i in 0..data.len() {
            for &j in g.neighbors(i) {
                assert_eq!(comp_of[i], comp_of[j as usize], "seed {seed}");
            }
        }
    }
}

#[test]
fn dendrogram_cuts_are_nested_partitions() {
    // Fewer cases: the nested-partition check is O(n²) per cut level.
    for seed in 0..CASES / 2 {
        let mut rng = Rng::seed_from_u64(seed);
        let data = arb_dataset(&mut rng, 25, 15, 6);
        let theta = rng.gen_range(0.2..0.7);
        let n = data.len();
        let g = NeighborGraph::compute(&data, &Jaccard, theta, 1).unwrap();
        let links = LinkTable::compute(&g);
        let good = Goodness::new(theta, &MarketBasket).unwrap();
        let out = agglomerate(n, &links, &good, &AgglomerateConfig::new(1)).unwrap();
        let d = Dendrogram::new(n, out.history);
        let floor = d.min_clusters();
        // Every cut is a partition, and coarser cuts refine into finer ones.
        let mut prev: Option<Vec<u32>> = None;
        for k in floor..=n {
            let assign = d.cut_assignments(k).unwrap();
            assert_eq!(assign.len(), n, "seed {seed}");
            if let Some(coarser) = &prev {
                // k-1 (previous iteration, coarser) must be a merge of k's
                // clusters: same coarse cluster whenever same fine cluster.
                for a in 0..n {
                    for b in (a + 1)..n {
                        if assign[a] == assign[b] {
                            assert_eq!(coarser[a], coarser[b], "seed {seed}");
                        }
                    }
                }
            }
            prev = Some(assign);
        }
    }
}

#[test]
fn summaries_supports_are_consistent() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let data = arb_dataset(&mut rng, 30, 12, 6);
        let n = data.len();
        if n < 2 {
            continue;
        }
        let split = rng.gen_range(1..n);
        let members: Vec<u32> = (0..split as u32).collect();
        let s = ClusterSummary::compute(&data, &members, 0.0);
        assert_eq!(s.size, split, "seed {seed}");
        for item in &s.items {
            assert!(item.count >= 1 && item.count <= split, "seed {seed}");
            assert!(
                (item.support - item.count as f64 / split as f64).abs() < 1e-12,
                "seed {seed}"
            );
        }
        // Sorted by decreasing support.
        assert!(
            s.items.windows(2).all(|w| w[0].support >= w[1].support),
            "seed {seed}"
        );
    }
}
