//! Property-based tests (proptest) on the core data structures and
//! invariants of the clustering pipeline.

use proptest::prelude::*;

use rock::core::agglomerate::{agglomerate, AgglomerateConfig};
use rock::core::heap::IndexedHeap;
use rock::core::metrics::{hungarian_max, ContingencyTable};
use rock::prelude::*;

fn arb_transaction(universe: u32, max_len: usize) -> impl Strategy<Value = Transaction> {
    proptest::collection::vec(0..universe, 0..=max_len).prop_map(Transaction::new)
}

fn arb_dataset(n: usize, universe: u32, max_len: usize) -> impl Strategy<Value = TransactionSet> {
    proptest::collection::vec(arb_transaction(universe, max_len), 1..=n)
        .prop_map(move |v| TransactionSet::new(v, universe as usize))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ── Transactions & similarity ──────────────────────────────────────

    #[test]
    fn intersection_is_bounded_and_symmetric(
        a in arb_transaction(40, 15),
        b in arb_transaction(40, 15),
    ) {
        let ab = a.intersection_len(&b);
        prop_assert_eq!(ab, b.intersection_len(&a));
        prop_assert!(ab <= a.len().min(b.len()));
        prop_assert_eq!(a.union_len(&b) + ab, a.len() + b.len());
    }

    #[test]
    fn jaccard_properties(
        a in arb_transaction(30, 12),
        b in arb_transaction(30, 12),
    ) {
        let s = Jaccard.sim(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(s, Jaccard.sim(&b, &a));
        prop_assert_eq!(Jaccard.sim(&a, &a), 1.0);
        // Jaccard dominates Dice ordering: both rank pairs identically.
        let d = Dice.sim(&a, &b);
        prop_assert!(d >= s || (d - s).abs() < 1e-12);
    }

    // ── Neighbor graph ─────────────────────────────────────────────────

    #[test]
    fn neighbor_graph_is_symmetric_and_loopless(
        data in arb_dataset(30, 25, 8),
        theta in 0.05f64..0.95,
    ) {
        let g = NeighborGraph::compute(&data, &Jaccard, theta, 1).unwrap();
        for i in 0..g.len() {
            prop_assert!(!g.neighbors(i).contains(&(i as u32)));
            for &j in g.neighbors(i) {
                prop_assert!(g.neighbors(j as usize).contains(&(i as u32)));
            }
        }
    }

    #[test]
    fn higher_theta_never_adds_neighbors(
        data in arb_dataset(25, 20, 8),
        theta in 0.1f64..0.8,
    ) {
        let lo = NeighborGraph::compute(&data, &Jaccard, theta, 1).unwrap();
        let hi = NeighborGraph::compute(&data, &Jaccard, theta + 0.1, 1).unwrap();
        for i in 0..lo.len() {
            prop_assert!(hi.degree(i) <= lo.degree(i));
        }
    }

    // ── Links ──────────────────────────────────────────────────────────

    #[test]
    fn links_match_bruteforce(
        data in arb_dataset(25, 20, 8),
        theta in 0.1f64..0.9,
    ) {
        let g = NeighborGraph::compute(&data, &Jaccard, theta, 1).unwrap();
        let links = LinkTable::compute(&g);
        for i in 0..g.len() {
            for j in (i + 1)..g.len() {
                let expected = g
                    .neighbors(i)
                    .iter()
                    .filter(|x| g.neighbors(j).contains(x))
                    .count() as u32;
                prop_assert_eq!(links.link(i, j), expected);
            }
        }
    }

    // ── Heap vs reference model ────────────────────────────────────────

    #[test]
    fn heap_matches_btreemap_model(ops in proptest::collection::vec((0u32..32, 0u64..100, 0u8..3), 1..300)) {
        let mut heap: IndexedHeap<u64> = IndexedHeap::new();
        let mut model = std::collections::BTreeMap::new();
        for (id, p, op) in ops {
            match op {
                0 => {
                    heap.insert_or_update(id, p);
                    model.insert(id, p);
                }
                1 => {
                    prop_assert_eq!(heap.remove(id), model.remove(&id));
                }
                _ => {
                    let got = heap.peek().map(|(p, _)| *p);
                    let expect = model.values().max().copied();
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(heap.len(), model.len());
        }
    }

    // ── Agglomeration invariants ───────────────────────────────────────

    #[test]
    fn agglomeration_partitions_points(
        data in arb_dataset(30, 15, 6),
        theta in 0.2f64..0.8,
        k in 1usize..5,
    ) {
        let n = data.len();
        prop_assume!(k <= n);
        let g = NeighborGraph::compute(&data, &Jaccard, theta, 1).unwrap();
        let links = LinkTable::compute(&g);
        let good = Goodness::new(theta, &MarketBasket).unwrap();
        let out = agglomerate(n, &links, &good, &AgglomerateConfig::new(k)).unwrap();
        // Clusters form a partition of all n points (no pruning here).
        let mut seen = vec![false; n];
        for members in &out.clusters {
            for &p in members {
                prop_assert!(!seen[p as usize]);
                seen[p as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // At least k clusters (early stop allowed), never fewer.
        prop_assert!(out.clusters.len() >= k);
        if out.reached_k {
            prop_assert_eq!(out.clusters.len(), k);
        }
        // Merge history consistent with cluster count.
        prop_assert_eq!(out.merges, n - out.clusters.len());
    }

    #[test]
    fn merge_goodness_is_positive_and_monotone_in_links(
        links in 1u64..1000,
        ni in 1usize..100,
        nj in 1usize..100,
        theta in 0.1f64..0.9,
    ) {
        let g = Goodness::new(theta, &MarketBasket).unwrap();
        let a = g.merge_goodness(links, ni, nj);
        let b = g.merge_goodness(links + 1, ni, nj);
        prop_assert!(a > 0.0);
        prop_assert!(b > a);
        // Symmetric in the cluster sizes (up to fp rounding: the
        // denominator subtracts E(ni) and E(nj) in swapped order).
        let swapped = g.merge_goodness(links, nj, ni);
        prop_assert!((a - swapped).abs() <= 1e-9 * a.abs().max(1.0));
    }

    // ── Metrics ────────────────────────────────────────────────────────

    #[test]
    fn accuracy_invariant_to_cluster_relabeling(
        labels in proptest::collection::vec(0usize..3, 4..40),
        preds in proptest::collection::vec(0u32..3, 4..40),
    ) {
        let n = labels.len().min(preds.len());
        let labels = &labels[..n];
        let preds: Vec<Option<u32>> = preds[..n].iter().map(|&p| Some(p)).collect();
        // Permute cluster ids 0→2, 1→0, 2→1.
        let permuted: Vec<Option<u32>> =
            preds.iter().map(|p| p.map(|c| (c + 2) % 3)).collect();
        let a = ContingencyTable::new(&preds, labels).unwrap();
        let b = ContingencyTable::new(&permuted, labels).unwrap();
        prop_assert!((a.matched_accuracy() - b.matched_accuracy()).abs() < 1e-12);
        prop_assert!((a.adjusted_rand_index() - b.adjusted_rand_index()).abs() < 1e-9);
        prop_assert!((a.nmi() - b.nmi()).abs() < 1e-9);
    }

    #[test]
    fn hungarian_beats_greedy(
        flat in proptest::collection::vec(0i64..50, 16..=16),
    ) {
        let profit: Vec<Vec<i64>> = flat.chunks(4).map(|c| c.to_vec()).collect();
        let assign = hungarian_max(&profit);
        let total: i64 = assign.iter().enumerate().map(|(i, &j)| profit[i][j]).sum();
        // Greedy row-by-row baseline.
        let mut used = [false; 4];
        let mut greedy = 0i64;
        for row in &profit {
            let (j, v) = row
                .iter()
                .enumerate()
                .filter(|&(j, _)| !used[j])
                .max_by_key(|&(_, v)| *v)
                .unwrap();
            used[j] = true;
            greedy += v;
        }
        prop_assert!(total >= greedy);
        // Assignment is a permutation.
        let mut sorted = assign.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn purity_bounds(
        labels in proptest::collection::vec(0usize..4, 2..30),
    ) {
        let preds: Vec<Option<u32>> = labels.iter().map(|&l| Some(l as u32)).collect();
        let t = ContingencyTable::new(&preds, &labels).unwrap();
        // Predicting the truth exactly is perfect under every measure.
        prop_assert_eq!(t.purity(), 1.0);
        prop_assert_eq!(t.matched_accuracy(), 1.0);
        prop_assert!(t.nmi() > 0.999);
    }

    // ── Sampling ───────────────────────────────────────────────────────

    #[test]
    fn sample_indices_are_valid(
        n in 1usize..500,
        frac in 0.01f64..1.0,
        seed in 0u64..1000,
    ) {
        let size = ((n as f64 * frac).ceil() as usize).clamp(1, n);
        let mut rng = seeded_rng(seed);
        let s = sample_indices(n, size, &mut rng).unwrap();
        prop_assert_eq!(s.len(), size);
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(s.iter().all(|&i| i < n));
    }

    #[test]
    fn chernoff_bound_monotonicity(
        n in 100usize..10_000,
        u_frac in 0.05f64..0.5,
    ) {
        let u = ((n as f64 * u_frac) as usize).max(1);
        let loose = chernoff_sample_size(n, u, 0.25, 0.1).unwrap();
        let tight = chernoff_sample_size(n, u, 0.25, 0.01).unwrap();
        prop_assert!(tight >= loose);
        prop_assert!(loose <= n);
    }
}

// ── Extension modules ────────────────────────────────────────────────

use rock::core::components::connected_components;
use rock::core::export::{read_assignments, write_assignments};
use rock::core::summary::ClusterSummary;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn export_roundtrips_arbitrary_assignments(
        raw in proptest::collection::vec(proptest::option::of(0u32..50), 0..200),
    ) {
        let assignments: Vec<Option<ClusterId>> =
            raw.iter().map(|o| o.map(ClusterId)).collect();
        let mut buf = Vec::new();
        write_assignments(&mut buf, &assignments).unwrap();
        let back = read_assignments(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, assignments);
    }

    #[test]
    fn components_partition_all_points(
        data in arb_dataset(40, 20, 8),
        theta in 0.1f64..0.9,
    ) {
        let g = NeighborGraph::compute(&data, &Jaccard, theta, 1).unwrap();
        let comps = connected_components(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, data.len());
        let mut seen = vec![false; data.len()];
        for c in &comps {
            for &p in c {
                prop_assert!(!seen[p as usize]);
                seen[p as usize] = true;
            }
        }
        // Size-sorted.
        prop_assert!(comps.windows(2).all(|w| w[0].len() >= w[1].len()));
        // No edge may cross components.
        let mut comp_of = vec![0usize; data.len()];
        for (ci, c) in comps.iter().enumerate() {
            for &p in c {
                comp_of[p as usize] = ci;
            }
        }
        for i in 0..data.len() {
            for &j in g.neighbors(i) {
                prop_assert_eq!(comp_of[i], comp_of[j as usize]);
            }
        }
    }

    #[test]
    fn dendrogram_cuts_are_nested_partitions(
        data in arb_dataset(25, 15, 6),
        theta in 0.2f64..0.7,
    ) {
        let n = data.len();
        let g = NeighborGraph::compute(&data, &Jaccard, theta, 1).unwrap();
        let links = LinkTable::compute(&g);
        let good = Goodness::new(theta, &MarketBasket).unwrap();
        let out = rock::core::agglomerate::agglomerate(
            n,
            &links,
            &good,
            &rock::core::agglomerate::AgglomerateConfig::new(1),
        )
        .unwrap();
        let d = Dendrogram::new(n, out.history);
        let floor = d.min_clusters();
        // Every cut is a partition, and coarser cuts refine into finer ones.
        let mut prev: Option<Vec<u32>> = None;
        for k in floor..=n {
            let assign = d.cut_assignments(k).unwrap();
            prop_assert_eq!(assign.len(), n);
            if let Some(coarser) = &prev {
                // k-1 (previous iteration, coarser) must be a merge of k's
                // clusters: same coarse cluster whenever same fine cluster.
                for a in 0..n {
                    for b in (a + 1)..n {
                        if assign[a] == assign[b] {
                            prop_assert_eq!(coarser[a], coarser[b]);
                        }
                    }
                }
            }
            prev = Some(assign);
        }
    }

    #[test]
    fn summaries_supports_are_consistent(
        data in arb_dataset(30, 12, 6),
        split in 1usize..29,
    ) {
        let n = data.len();
        prop_assume!(split < n);
        let members: Vec<u32> = (0..split as u32).collect();
        let s = ClusterSummary::compute(&data, &members, 0.0);
        prop_assert_eq!(s.size, split);
        for item in &s.items {
            prop_assert!(item.count >= 1 && item.count <= split);
            prop_assert!((item.support - item.count as f64 / split as f64).abs() < 1e-12);
        }
        // Sorted by decreasing support.
        prop_assert!(s
            .items
            .windows(2)
            .all(|w| w[0].support >= w[1].support));
    }
}
