//! Integration tests for the extension features: dendrograms,
//! goodness-threshold stopping, connected components, summaries and
//! streaming labeling.

use rock::core::agglomerate::{agglomerate, AgglomerateConfig};
use rock::core::labeling::{label_stream, Representatives};
use rock::core::metrics::matched_accuracy;
use rock::core::summary::ClusterSummary;
use rock::datasets::synthetic::{BasketModel, LatentClassModel, MushroomModel};
use rock::prelude::*;

#[test]
fn dendrogram_cut_matches_direct_agglomeration() {
    // Cutting a k=1 dendrogram at k must reproduce a direct run at k: the
    // greedy merge sequence is the same prefix.
    let (table, _) = LatentClassModel::uniform(4, 30, 12, 4)
        .concentration(0.9)
        .seed(5)
        .generate();
    let data = table.to_transactions();
    let theta = 0.45;
    let g = NeighborGraph::compute(&data, &Jaccard, theta, 1).unwrap();
    let links = LinkTable::compute(&g);
    let good = Goodness::new(theta, &MarketBasket).unwrap();

    let full = agglomerate(data.len(), &links, &good, &AgglomerateConfig::new(1)).unwrap();
    let dendro = Dendrogram::new(data.len(), full.history.clone());
    // Cross-class links may run out before k = 1; compare from whatever
    // floor the greedy run reached upward.
    let floor = dendro.min_clusters();
    for k in [floor, floor + 3, floor + 10, (floor + 30).min(data.len())] {
        let direct = agglomerate(data.len(), &links, &good, &AgglomerateConfig::new(k)).unwrap();
        let cut = dendro.cut(k).expect("valid cut");
        assert_eq!(cut, direct.clusters, "cut at k={k} diverges");
    }
}

#[test]
fn model_dendrogram_requires_history() {
    let (table, _) = LatentClassModel::uniform(3, 20, 10, 3).seed(1).generate();
    let data = table.to_transactions();
    let without = RockBuilder::new(3, 0.45).build().fit(&data).unwrap();
    assert!(without.dendrogram().is_none());
    let with = RockBuilder::new(3, 0.45)
        .record_history(true)
        .build()
        .fit(&data)
        .unwrap();
    let d = with.dendrogram().expect("history recorded");
    assert_eq!(d.num_points(), with.stats().sample_size);
    assert_eq!(d.min_clusters(), with.num_clusters());
}

#[test]
fn min_goodness_via_builder_stops_at_structure() {
    // Well-separated classes: with an absurdly high goodness floor nothing
    // merges; with floor 0 the requested k is reached.
    let (table, truth) = LatentClassModel::uniform(3, 30, 12, 4)
        .concentration(0.9)
        .seed(7)
        .generate();
    let data = table.to_transactions();
    let strict = RockBuilder::new(1, 0.45)
        .min_goodness(f64::INFINITY)
        .build()
        .fit(&data)
        .unwrap();
    assert_eq!(strict.num_clusters(), data.len(), "no merge clears +inf");
    let relaxed = RockBuilder::new(3, 0.45)
        .min_goodness(0.0)
        .build()
        .fit(&data)
        .unwrap();
    assert_eq!(relaxed.num_clusters(), 3);
    let pred: Vec<Option<u32>> = relaxed
        .assignments()
        .iter()
        .map(|a| a.map(|c| c.0))
        .collect();
    assert!(matched_accuracy(&pred, &truth).unwrap() > 0.95);
}

#[test]
fn components_match_rock_on_separated_baskets() {
    let (data, truth) = BasketModel::disjoint(3, 25, 14, (4, 6)).seed(9).generate();
    let g = NeighborGraph::compute(&data, &Jaccard, 0.25, 1).unwrap();
    let comps = connected_components(&g);
    assert_eq!(comps.len(), 3);
    let mut pred: Vec<Option<u32>> = vec![None; data.len()];
    for (c, members) in comps.iter().enumerate() {
        for &p in members {
            pred[p as usize] = Some(c as u32);
        }
    }
    assert_eq!(matched_accuracy(&pred, &truth).unwrap(), 1.0);
}

#[test]
fn summaries_recover_planted_templates() {
    // High-concentration classes: each cluster's top items should be the
    // class's preferred (attribute, value) pairs with support ≈ 0.95.
    let (table, _) = LatentClassModel::uniform(3, 40, 10, 4)
        .concentration(0.95)
        .seed(3)
        .generate();
    let data = table.to_transactions();
    let model = RockBuilder::new(3, 0.5).build().fit(&data).unwrap();
    let summaries = ClusterSummary::compute_all(&data, model.clusters(), 0.7);
    for s in &summaries {
        // Roughly one characteristic item per attribute.
        assert!(
            (8..=10).contains(&s.items.len()),
            "expected ~10 characteristic items, got {}",
            s.items.len()
        );
        assert!(s.items[0].support > 0.85);
        // Description renders through the vocabulary.
        let text = s.describe(&data, 3);
        assert!(text.contains('='), "vocabulary rendering: {text}");
    }
}

#[test]
fn streaming_labeling_matches_batch_pipeline() {
    let (table, _, groups) = MushroomModel::scaled(600, 5).seed(8).generate();
    let data = table.to_transactions();
    // Cluster a sample manually, then stream-label everything.
    let mut rng = seeded_rng(8);
    let idx = sample_indices(data.len(), 200, &mut rng).unwrap();
    let sample = data.subset(&idx);
    let model = RockBuilder::new(5, 0.8)
        .seed(8)
        .build()
        .fit(&sample)
        .unwrap();
    let sample_clusters: Vec<Vec<u32>> = model.clusters().to_vec();
    let reps = Representatives::draw(
        &sample,
        &sample_clusters,
        &LabelingConfig::default(),
        &mut rng,
    )
    .unwrap();
    let streamed: Vec<Option<usize>> =
        label_stream(data.iter().cloned(), &reps, &Jaccard, &MarketBasket, 0.8)
            .map(|(_, l)| l)
            .collect();
    // Streamed labels should agree with the latent groups almost always.
    let pred: Vec<Option<u32>> = streamed.iter().map(|l| l.map(|c| c as u32)).collect();
    let acc = matched_accuracy(&pred, &groups).unwrap();
    assert!(acc > 0.9, "stream labeling accuracy {acc}");
}

#[test]
fn goodness_profile_is_reported_in_merge_order() {
    let (data, _) = BasketModel::disjoint(2, 20, 12, (4, 6)).seed(2).generate();
    let model = RockBuilder::new(2, 0.3)
        .record_history(true)
        .build()
        .fit(&data)
        .unwrap();
    let d = model.dendrogram().unwrap();
    let profile = d.goodness_profile();
    assert_eq!(profile.len(), model.stats().merges);
    assert!(profile.iter().all(|&g| g.is_finite() && g > 0.0));
}
