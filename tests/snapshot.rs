//! Snapshot determinism across *process* invocations: the same fit
//! must save byte-identical `rock-model/v1` files, and the same
//! snapshot must label the same input byte-identically, run twice
//! through the real CLI binary.

use std::path::{Path, PathBuf};
use std::process::Command;

use rock::core::data::AttrId;
use rock::core::snapshot::ModelSnapshot;
use rock::datasets::synthetic::MushroomModel;

fn table_to_csv(table: &rock::core::data::CategoricalTable, labels: &[&'static str]) -> String {
    let mut out = String::new();
    for (i, row) in table.rows().enumerate() {
        out.push_str(labels[i]);
        for (j, cell) in row.iter().enumerate() {
            out.push(',');
            match cell {
                Some(code) => {
                    let attr = table
                        .schema()
                        .attribute(AttrId(u16::try_from(j).unwrap()))
                        .unwrap();
                    out.push_str(attr.value(*code).unwrap());
                }
                None => out.push('?'),
            }
        }
        out.push('\n');
    }
    out
}

fn fixture_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fit_with_snapshot(input: &Path, model_out: &Path) {
    let output = Command::new(env!("CARGO_BIN_EXE_rock-cluster"))
        .args([
            "--input",
            input.to_str().unwrap(),
            "--k",
            "3",
            "--theta",
            "0.8",
            "--label",
            "first",
            "--seed",
            "42",
            "--save-model",
            model_out.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "fit failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

fn label_batch(model: &Path, input: &Path, out: &Path) {
    let output = Command::new(env!("CARGO_BIN_EXE_rock-cluster"))
        .args([
            "label",
            "--model",
            model.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--label",
            "first",
            "--output",
            out.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "label failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn save_model_is_byte_identical_across_invocations() {
    let dir = fixture_dir("rock-snapshot-determinism");
    let input = dir.join("data.csv");
    let (table, classes, _) = MushroomModel::scaled(300, 3).seed(9).generate();
    std::fs::write(&input, table_to_csv(&table, &classes)).unwrap();

    let model_a = dir.join("a.rockmodel");
    let model_b = dir.join("b.rockmodel");
    fit_with_snapshot(&input, &model_a);
    fit_with_snapshot(&input, &model_b);

    let bytes_a = std::fs::read(&model_a).unwrap();
    let bytes_b = std::fs::read(&model_b).unwrap();
    assert!(!bytes_a.is_empty());
    assert_eq!(
        bytes_a, bytes_b,
        "identical fits must save identical snapshots"
    );

    // save → load → save is also byte-identical (canonical rendering).
    let snapshot = ModelSnapshot::load(&model_a).unwrap();
    let resaved = dir.join("resaved.rockmodel");
    snapshot.save(&resaved).unwrap();
    assert_eq!(std::fs::read(&resaved).unwrap(), bytes_a);

    for f in [&input, &model_a, &model_b, &resaved] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn labeling_is_byte_identical_across_invocations() {
    let dir = fixture_dir("rock-label-determinism");
    let input = dir.join("data.csv");
    let (table, classes, _) = MushroomModel::scaled(250, 3).seed(13).generate();
    std::fs::write(&input, table_to_csv(&table, &classes)).unwrap();

    let model = dir.join("model.rockmodel");
    fit_with_snapshot(&input, &model);

    let labels_a = dir.join("labels-a.txt");
    let labels_b = dir.join("labels-b.txt");
    label_batch(&model, &input, &labels_a);
    label_batch(&model, &input, &labels_b);

    let bytes_a = std::fs::read(&labels_a).unwrap();
    let bytes_b = std::fs::read(&labels_b).unwrap();
    assert!(bytes_a.starts_with(b"rock-assignments v1"));
    assert_eq!(
        bytes_a, bytes_b,
        "same snapshot + same input must label byte-identically"
    );

    for f in [&input, &model, &labels_a, &labels_b] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn snapshot_survives_corruption_detection() {
    let dir = fixture_dir("rock-snapshot-corruption");
    let input = dir.join("data.csv");
    let (table, classes, _) = MushroomModel::scaled(150, 3).seed(5).generate();
    std::fs::write(&input, table_to_csv(&table, &classes)).unwrap();
    let model = dir.join("model.rockmodel");
    fit_with_snapshot(&input, &model);

    // Flip one byte in the body: the checksum must catch it.
    let mut bytes = std::fs::read(&model).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] = bytes[mid].wrapping_add(1);
    let corrupt = dir.join("corrupt.rockmodel");
    std::fs::write(&corrupt, &bytes).unwrap();
    let err = ModelSnapshot::load(&corrupt).unwrap_err();
    assert_eq!(
        err.exit_code(),
        4,
        "corruption must map to exit code 4: {err}"
    );

    for f in [&input, &model, &corrupt] {
        std::fs::remove_file(f).ok();
    }
}
