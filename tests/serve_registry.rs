//! Registry smoke test: fit two different models offline with
//! `rock-cluster`, serve both from one `rock-serve` registry, hot-swap
//! the default through the admin plane, and require every NDJSON
//! response body to be **byte-identical** to the offline
//! `rock-cluster label` output for whichever model was active.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

use rock::core::data::{AttrId, CategoricalTable, ClusterId};
use rock::core::export::read_assignments;
use rock::core::snapshot::ModelSnapshot;
use rock::core::telemetry::json::{escape, Json};
use rock::datasets::synthetic::MushroomModel;
use rock_serve::server::{ServeConfig, Server, ServerHandle};

const RECORDS: usize = 300;

fn table_to_csv(table: &CategoricalTable, labels: &[&'static str]) -> String {
    let mut out = String::new();
    for (i, row) in table.rows().enumerate() {
        out.push_str(labels[i]);
        for (j, cell) in row.iter().enumerate() {
            out.push(',');
            match cell {
                Some(code) => {
                    let attr = table
                        .schema()
                        .attribute(AttrId(u16::try_from(j).unwrap()))
                        .unwrap();
                    out.push_str(attr.value(*code).unwrap());
                }
                None => out.push('?'),
            }
        }
        out.push('\n');
    }
    out
}

/// `{"record":["v1","v2",…]}` for row `i` of the table.
fn record_body(table: &CategoricalTable, i: usize) -> String {
    let row: Vec<Option<u16>> = table.rows().nth(i).unwrap().to_vec();
    let mut body = String::from("{\"record\":[");
    for (j, cell) in row.iter().enumerate() {
        if j > 0 {
            body.push(',');
        }
        let text = match cell {
            Some(code) => table
                .schema()
                .attribute(AttrId(u16::try_from(j).unwrap()))
                .unwrap()
                .value(*code)
                .unwrap(),
            None => "?",
        };
        body.push('"');
        body.push_str(&escape(text));
        body.push('"');
    }
    body.push_str("]}");
    body
}

/// One keep-alive client connection speaking raw HTTP/1.1.
struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        Client { stream }
    }

    /// Sends `body` to `path` and returns the full response text.
    fn post(&mut self, path: &str, body: &str) -> String {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        self.stream.write_all(raw.as_bytes()).unwrap();
        self.read_response()
    }

    fn get(&mut self, path: &str) -> String {
        let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
        self.stream.write_all(raw.as_bytes()).unwrap();
        self.read_response()
    }

    /// Reads one HTTP response using its `Content-Length` framing.
    fn read_response(&mut self) -> String {
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            assert_eq!(
                self.stream.read(&mut byte).unwrap(),
                1,
                "connection closed mid-response (dropped response)"
            );
            head.push(byte[0]);
        }
        let text = String::from_utf8(head.clone()).unwrap();
        let len: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; len];
        self.stream.read_exact(&mut body).unwrap();
        head.extend_from_slice(&body);
        String::from_utf8(head).unwrap()
    }
}

fn body_of(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap()
}

fn header_of<'a>(response: &'a str, name: &str) -> Option<&'a str> {
    response
        .lines()
        .take_while(|l| !l.trim_end().is_empty())
        .find_map(|l| l.strip_prefix(name).and_then(|v| v.strip_prefix(": ")))
        .map(str::trim_end)
}

/// Fits a model on `input` with `rock-cluster`, labels `input` offline
/// with the same binary, and returns the snapshot path plus the offline
/// assignments — the ground truth the server must match byte-for-byte.
fn fit_and_label_offline(
    dir: &Path,
    input: &Path,
    tag: &str,
    theta: &str,
) -> (PathBuf, Vec<Option<ClusterId>>) {
    let model = dir.join(format!("{tag}.rockmodel"));
    let output = Command::new(env!("CARGO_BIN_EXE_rock-cluster"))
        .args([
            "--input",
            input.to_str().unwrap(),
            "--k",
            "3",
            "--theta",
            theta,
            "--label",
            "first",
            "--seed",
            "42",
            "--save-model",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "fit failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    let labels = dir.join(format!("{tag}-offline-labels.txt"));
    let output = Command::new(env!("CARGO_BIN_EXE_rock-cluster"))
        .args([
            "label",
            "--model",
            model.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--label",
            "first",
            "--output",
            labels.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "offline label failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let expected = read_assignments(BufReader::new(std::fs::File::open(&labels).unwrap())).unwrap();
    std::fs::remove_file(&labels).ok();
    (model, expected)
}

/// The exact NDJSON body the server must return for `expected`.
fn expected_ndjson(expected: &[Option<ClusterId>]) -> String {
    let mut out = String::new();
    for label in expected {
        match label {
            Some(c) => out.push_str(&format!("{{\"cluster\":{}}}\n", c.0)),
            None => out.push_str("{\"cluster\":null}\n"),
        }
    }
    out
}

#[test]
fn two_models_swap_and_label_byte_identical_to_offline_cli() {
    let dir = std::env::temp_dir().join("rock-serve-registry-smoke");
    std::fs::create_dir_all(&dir).unwrap();

    // Two genuinely different fits of the same data: θ=0.8 vs θ=0.6
    // draw different representative sets, so the two models are
    // distinguishable by their labels and fingerprints.
    let input = dir.join("data.csv");
    let (table, classes, _) = MushroomModel::scaled(RECORDS, 3).seed(7).generate();
    std::fs::write(&input, table_to_csv(&table, &classes)).unwrap();
    let (alpha_path, alpha_expected) = fit_and_label_offline(&dir, &input, "alpha", "0.8");
    let (beta_path, beta_expected) = fit_and_label_offline(&dir, &input, "beta", "0.6");

    let alpha = ModelSnapshot::load(&alpha_path).unwrap();
    let beta = ModelSnapshot::load(&beta_path).unwrap();
    assert_ne!(
        alpha.fingerprint(),
        beta.fingerprint(),
        "the two fits must be distinct models"
    );
    let beta_text = beta.render();
    let alpha_fp = alpha.fingerprint_hex();
    let beta_fp = beta.fingerprint_hex();

    // Mount alpha as the default; beta arrives over the admin plane.
    let handle = Server::start(alpha, ServeConfig::default()).unwrap();
    let mut client = Client::connect(&handle);
    let resp = client.post("/admin/models/beta", &beta_text);
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp:?}");

    // Health: both models ready.
    let health = client.get("/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "{health:?}");
    let doc = Json::parse(body_of(&health)).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(doc.get("models_loaded").and_then(Json::as_u64), Some(2));

    // One NDJSON batch with every record.
    let batch: String = (0..RECORDS)
        .map(|i| {
            let mut line = record_body(&table, i);
            line.push('\n');
            line
        })
        .collect();
    let alpha_ndjson = expected_ndjson(&alpha_expected);
    let beta_ndjson = expected_ndjson(&beta_expected);
    assert_ne!(
        alpha_ndjson, beta_ndjson,
        "θ=0.8 and θ=0.6 must label at least one record differently"
    );

    // The default route answers with alpha, byte-identical to the
    // offline CLI, and says so in its model headers.
    let resp = client.post("/label", &batch);
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp:?}");
    assert_eq!(body_of(&resp), alpha_ndjson);
    assert_eq!(header_of(&resp, "X-Rock-Model"), Some("default@v1"));
    assert_eq!(
        header_of(&resp, "X-Rock-Model-Fingerprint"),
        Some(alpha_fp.as_str())
    );

    // The named route answers with beta.
    let resp = client.post("/models/beta/label", &batch);
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp:?}");
    assert_eq!(body_of(&resp), beta_ndjson);
    assert_eq!(header_of(&resp, "X-Rock-Model"), Some("beta@v1"));

    // Hot-swap the default to beta: same route, new model, still
    // byte-identical to beta's offline labels.
    let resp = client.post("/admin/models/default", &beta_text);
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp:?}");
    let resp = client.post("/label", &batch);
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp:?}");
    assert_eq!(body_of(&resp), beta_ndjson);
    assert_eq!(header_of(&resp, "X-Rock-Model"), Some("default@v2"));
    assert_eq!(
        header_of(&resp, "X-Rock-Model-Fingerprint"),
        Some(beta_fp.as_str())
    );

    // The registry listing reflects the swap.
    let listing = client.get("/admin/models");
    let doc = Json::parse(body_of(&listing)).unwrap();
    let models = doc.get("models").unwrap();
    assert_eq!(
        models
            .get("default")
            .and_then(|m| m.get("version"))
            .and_then(Json::as_u64),
        Some(2)
    );
    assert_eq!(
        models
            .get("beta")
            .and_then(|m| m.get("state"))
            .and_then(Json::as_str),
        Some("ready")
    );
    drop(client);

    let counters = handle.counters();
    assert_eq!(
        counters.labeled + counters.outlier,
        (RECORDS as u64) * 3,
        "every batched point answered exactly once"
    );
    assert_eq!(counters.shed, 0);
    let metrics = handle.shutdown();
    let doc = Json::parse(&metrics).unwrap();
    let registry = doc.get("registry").unwrap();
    assert_eq!(registry.get("swaps").and_then(Json::as_u64), Some(3));

    std::fs::remove_file(&input).ok();
    std::fs::remove_file(&alpha_path).ok();
    std::fs::remove_file(&beta_path).ok();
}
