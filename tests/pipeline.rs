//! Cross-crate integration tests: generators → ROCK pipeline → metrics,
//! plus loader → pipeline round trips.

use rock::baselines::{similarity_only, traditional, KModes, Linkage};
use rock::core::metrics::{densify_labels, matched_accuracy, purity};
use rock::datasets::loader::{parse_labeled, LabelPosition, LoadConfig};
use rock::datasets::synthetic::{
    intro_example, BlockModel, FundsModel, MushroomModel, Party, VotesModel,
};
use rock::datasets::timeseries::UpDownConfig;
use rock::prelude::*;

fn predictions(model: &RockModel) -> Vec<Option<u32>> {
    model.assignments().iter().map(|a| a.map(|c| c.0)).collect()
}

#[test]
fn votes_like_end_to_end() {
    let (table, parties) = VotesModel::default().seed(11).generate();
    let truth: Vec<usize> = parties
        .iter()
        .map(|p| usize::from(*p == Party::Republican))
        .collect();
    let data = table.to_transactions();
    let model = RockBuilder::new(2, 0.45)
        .seed(11)
        .build()
        .fit(&data)
        .unwrap();
    let acc = matched_accuracy(&predictions(&model), &truth).unwrap();
    assert!(acc > 0.9, "votes accuracy {acc}");
    assert_eq!(model.num_clusters(), 2);
}

#[test]
fn mushroom_like_sample_and_label_end_to_end() {
    let (table, classes, groups) = MushroomModel::scaled(1200, 6).seed(7).generate();
    let data = table.to_transactions();
    let class_truth = densify_labels(&classes);
    let model = RockBuilder::new(6, 0.8)
        .sample(SampleStrategy::Fixed(400))
        .seed(7)
        .build()
        .fit(&data)
        .unwrap();
    let pred = predictions(&model);
    let acc = matched_accuracy(&pred, &groups).unwrap();
    assert!(acc > 0.9, "group accuracy {acc}");
    assert!(purity(&pred, &class_truth).unwrap() > 0.9);
    // Every sample index must be assigned or an outlier, and assignments
    // must cover the whole dataset.
    assert_eq!(model.assignments().len(), 1200);
}

#[test]
fn funds_end_to_end() {
    let model = FundsModel::scaled(3, 25, 250).seed(5);
    let (data, sectors) = model.generate(&UpDownConfig::default());
    let rock = RockBuilder::new(3, 0.55)
        .seed(5)
        .build()
        .fit(&data)
        .unwrap();
    let acc = matched_accuracy(&predictions(&rock), &sectors).unwrap();
    assert!(acc > 0.95, "funds accuracy {acc}");
}

#[test]
fn rock_beats_single_link_on_bridged_baskets() {
    let (data, truth) = intro_example(4);
    let rock = RockBuilder::new(2, 0.5)
        .neighbor_filter(NeighborFilter::disabled())
        .build()
        .fit(&data)
        .unwrap();
    let rock_acc = matched_accuracy(&predictions(&rock), &truth).unwrap();
    let single = similarity_only(&data, 2, &Jaccard, Linkage::Single).unwrap();
    let single_acc = matched_accuracy(&single.as_predictions(), &truth).unwrap();
    assert!(
        rock_acc > single_acc + 0.2,
        "rock {rock_acc} vs single-link {single_acc}"
    );
}

#[test]
fn all_algorithms_agree_on_clean_blocks() {
    // p_in = 0.7 keeps per-block modes crisp (at 0.5 each block's mode is
    // a coin flip and k-modes legitimately struggles).
    let (data, truth) = BlockModel::symmetric(3, 40, 30, 0.7, 0.0)
        .seed(3)
        .generate();
    let rock = RockBuilder::new(3, 0.3).seed(3).build().fit(&data).unwrap();
    assert_eq!(matched_accuracy(&predictions(&rock), &truth).unwrap(), 1.0);

    let trad = traditional(&data, 3, Linkage::Centroid).unwrap();
    assert_eq!(
        matched_accuracy(&trad.as_predictions(), &truth).unwrap(),
        1.0
    );

    // k-modes needs the tabular form; build one column per feature.
    let mut table = CategoricalTable::new(Schema::with_unnamed(90));
    for t in data.iter() {
        let row: Vec<Option<u16>> = (0..90u32).map(|f| Some(u16::from(t.contains(f)))).collect();
        table.push_coded(row).unwrap();
    }
    let km = KModes::new(3).n_init(8).seed(3).fit(&table).unwrap();
    let acc = matched_accuracy(&km.as_predictions(), &truth).unwrap();
    assert!(acc > 0.95, "kmodes accuracy {acc}");
}

#[test]
fn loader_to_pipeline_roundtrip() {
    // Two obvious classes in CSV form with a missing value.
    let mut csv = String::new();
    for i in 0..20 {
        let noise = if i % 2 == 0 { "u" } else { "v" };
        csv.push_str(&format!("a,b,c,{noise},left\n"));
    }
    for i in 0..20 {
        let noise = if i % 3 == 0 { "u" } else { "?" };
        csv.push_str(&format!("x,y,z,{noise},right\n"));
    }
    let loaded = parse_labeled(
        &csv,
        &LoadConfig {
            label: LabelPosition::Last,
            ..LoadConfig::default()
        },
    )
    .unwrap();
    let truth = densify_labels(&loaded.labels);
    let data = loaded.table.to_transactions();
    let model = RockBuilder::new(2, 0.5).build().fit(&data).unwrap();
    assert_eq!(matched_accuracy(&predictions(&model), &truth).unwrap(), 1.0);
}

#[test]
fn pipeline_is_deterministic_across_runs() {
    let (table, _, _) = MushroomModel::scaled(600, 5).seed(2).generate();
    let data = table.to_transactions();
    let fit = || {
        RockBuilder::new(5, 0.8)
            .sample(SampleStrategy::Fixed(300))
            .seed(9)
            .build()
            .fit(&data)
            .unwrap()
    };
    let (a, b) = (fit(), fit());
    assert_eq!(a.clusters(), b.clusters());
    assert_eq!(a.outliers(), b.outliers());
    assert_eq!(a.assignments(), b.assignments());
}

#[test]
fn model_invariants_hold() {
    let (table, _, _) = MushroomModel::scaled(500, 4).seed(6).generate();
    let data = table.to_transactions();
    let model = RockBuilder::new(4, 0.8)
        .sample(SampleStrategy::Fixed(200))
        .seed(1)
        .build()
        .fit(&data)
        .unwrap();
    // Clusters partition the assigned points.
    let mut seen = vec![false; data.len()];
    for (c, members) in model.clusters().iter().enumerate() {
        for &p in members {
            assert!(!seen[p as usize], "point {p} in two clusters");
            seen[p as usize] = true;
            assert_eq!(model.assignments()[p as usize], Some(ClusterId(c as u32)));
        }
    }
    for &o in model.outliers() {
        assert!(!seen[o as usize], "outlier {o} also in a cluster");
        assert_eq!(model.assignments()[o as usize], None);
        seen[o as usize] = true;
    }
    assert!(seen.iter().all(|&s| s), "every point accounted for");
    // Clusters are size-sorted.
    let sizes = model.cluster_sizes();
    assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
}

#[test]
fn chernoff_sampling_strategy_end_to_end() {
    let (data, truth) = BlockModel::symmetric(4, 150, 25, 0.4, 0.01)
        .seed(8)
        .generate();
    let model = RockBuilder::new(4, 0.25)
        .sample(SampleStrategy::Chernoff {
            u_min: 100,
            xi: 0.25,
            delta: 0.05,
        })
        .seed(8)
        .build()
        .fit(&data)
        .unwrap();
    let acc = matched_accuracy(&predictions(&model), &truth).unwrap();
    assert!(acc > 0.95, "chernoff pipeline accuracy {acc}");
    assert!(model.stats().sample_size < 600);
}
