//! Cluster congressional voting records into parties.
//!
//! If the real UCI file `house-votes-84.data` is present in `./data/`, it
//! is used (θ = 0.73, the paper's setting for the real data); otherwise
//! the calibrated synthetic generator stands in (θ = 0.45, matching its
//! softer polarization).
//!
//! ```text
//! cargo run --release --example congressional_votes
//! ```

use std::path::Path;

use rock::core::metrics::{cluster_breakdown, densify_labels, matched_accuracy};
use rock::datasets::synthetic::{Party, VotesModel};
use rock::datasets::UciDataset;
use rock::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data_dir = Path::new("data");
    let (table, labels, theta) = if UciDataset::CongressionalVotes.available_in(data_dir) {
        let loaded = UciDataset::CongressionalVotes.load(data_dir)?;
        println!(
            "using the real UCI dataset ({} records)",
            loaded.table.len()
        );
        (loaded.table, loaded.labels, 0.73)
    } else {
        println!("UCI file not found in ./data — using the synthetic votes generator");
        let (table, parties) = VotesModel::default().seed(1).generate();
        let labels = parties.iter().map(|p| p.label().to_owned()).collect();
        (table, labels, 0.45)
    };

    let truth = densify_labels(&labels);
    let data = table.to_transactions();
    println!(
        "{} members, {} issues, {:.1}% missing votes; theta = {theta}",
        table.len(),
        table.num_attributes(),
        100.0 * table.missing_fraction()
    );

    let model = RockBuilder::new(2, theta).seed(1).build().fit(&data)?;

    println!("\ncluster composition:");
    let pred: Vec<Option<u32>> = model.assignments().iter().map(|a| a.map(|c| c.0)).collect();
    for (i, (size, classes)) in cluster_breakdown(&pred, &truth)?.iter().enumerate() {
        println!("  cluster {i}: {size} members, per-party counts {classes:?}");
    }
    println!(
        "accuracy (optimal matching): {:.4}",
        matched_accuracy(&pred, &truth)?
    );
    let _ = Party::Democrat; // silence unused import when the real file exists
    Ok(())
}
