//! Links vs raw similarity on market-basket data with bridge baskets —
//! the paper's motivating scenario, using the lower-level API pieces
//! (neighbor graph, link table, merge engine) directly.
//!
//! ```text
//! cargo run --example market_basket
//! ```

use rock::baselines::{similarity_only, Linkage};
use rock::core::agglomerate::{agglomerate, AgglomerateConfig};
use rock::core::metrics::matched_accuracy;
use rock::datasets::synthetic::intro_example;
use rock::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (data, truth) = intro_example(4);
    println!(
        "{} baskets over {} items (incl. 4 bridge baskets straddling both clusters)",
        data.len(),
        data.universe()
    );

    // ── Step by step through ROCK's machinery ──────────────────────────
    let theta = 0.5;
    let graph = NeighborGraph::compute(&data, &Jaccard, theta, 1)?;
    let (avg, max) = graph.degree_stats();
    println!("neighbor graph at theta={theta}: avg degree {avg:.1}, max {max}");

    let links = LinkTable::compute(&graph);
    println!(
        "link table: {} nonzero pairs, {} total links",
        links.num_entries(),
        links.total_links()
    );
    // A within-cluster pair has many common neighbors; a bridge pair few.
    println!(
        "link(basket0, basket1) = {} (same cluster)",
        links.link(0, 1)
    );
    println!("link(basket0, basket20) = {} (bridge)", links.link(0, 20));

    let goodness = Goodness::new(theta, &MarketBasket)?;
    let result = agglomerate(data.len(), &links, &goodness, &AgglomerateConfig::new(2))?;
    let pred: Vec<Option<u32>> = result.assignment.clone();
    println!(
        "\nROCK merge engine: {} merges, final criterion {:.3}",
        result.history.len(),
        result.criterion
    );
    println!("ROCK accuracy: {:.4}", matched_accuracy(&pred, &truth)?);

    // ── The similarity-only strawman ───────────────────────────────────
    let single = similarity_only(&data, 2, &Jaccard, Linkage::Single)?;
    println!(
        "similarity-only single-link accuracy: {:.4}  (chains through the bridges)",
        matched_accuracy(&single.as_predictions(), &truth)?
    );
    Ok(())
}
