//! The full large-data pipeline on mushroom-scale data: Chernoff-sized
//! random sample → cluster with links → label the rest → outliers.
//!
//! ```text
//! cargo run --release --example mushroom_pipeline
//! ```

use rock::core::metrics::{densify_labels, matched_accuracy, purity};
use rock::datasets::synthetic::MushroomModel;
use rock::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4000-record mushroom-like dataset with 12 latent species groups.
    let model = MushroomModel::scaled(4000, 12).seed(3);
    let (table, classes, groups) = model.generate();
    let data = table.to_transactions();
    let class_truth = densify_labels(&classes);
    println!(
        "{} records, {} attributes, {} latent groups",
        table.len(),
        table.num_attributes(),
        12
    );

    // Paper §4.2: size the sample so every group of ≥100 points gets at
    // least a quarter of its mass, each with 95% confidence.
    let s = chernoff_sample_size(data.len(), 100, 0.25, 0.05)?;
    println!("Chernoff sample size: {s}");

    let rock = RockBuilder::new(12, 0.8)
        .sample(SampleStrategy::Fixed(s))
        .labeling(LabelingConfig {
            representative_fraction: 0.25,
            max_representatives: 128,
        })
        // Prune tiny stagnant clusters only once the genuine groups have
        // coalesced (the paper's 1/3-of-points checkpoint is tuned for
        // outlier-heavy data where real points merge much earlier).
        .prune(PruneConfig {
            checkpoint_fraction: 0.015,
            max_prune_size: 2,
        })
        .seed(3)
        .build()
        .fit(&data)?;

    let stats = rock.stats();
    println!(
        "sample {} pts: avg degree {:.0}, {} link entries, {} merges",
        stats.sample_size, stats.avg_degree, stats.link_entries, stats.merges
    );
    println!(
        "phases: neighbors {:?}, links {:?}, merge {:?}, labeling {:?}",
        stats.timings.neighbors, stats.timings.links, stats.timings.merge, stats.timings.labeling
    );

    let pred: Vec<Option<u32>> = rock.assignments().iter().map(|a| a.map(|c| c.0)).collect();
    println!(
        "\nfull-dataset results: {} clusters, {} outliers",
        rock.num_clusters(),
        rock.outliers().len()
    );
    println!(
        "latent-group accuracy {:.4}, edible/poisonous purity {:.4}",
        matched_accuracy(&pred, &groups)?,
        purity(&pred, &class_truth)?
    );
    Ok(())
}
