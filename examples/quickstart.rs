//! Quickstart: cluster a handful of market baskets with ROCK.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rock::prelude::*;

fn main() -> Result<(), RockError> {
    // Two kinds of shoppers: breakfast (items 0–4) and barbecue (10–14).
    let data: TransactionSet = vec![
        Transaction::new([0, 1, 2]),        // milk, cereal, bananas
        Transaction::new([0, 1, 3]),        // milk, cereal, yogurt
        Transaction::new([0, 2, 3, 4]),     // milk, bananas, yogurt, oats
        Transaction::new([1, 2, 4]),        // cereal, bananas, oats
        Transaction::new([10, 11, 12]),     // charcoal, burgers, buns
        Transaction::new([10, 11, 13]),     // charcoal, burgers, sauce
        Transaction::new([10, 12, 13, 14]), // charcoal, buns, sauce, corn
        Transaction::new([11, 12, 14]),     // burgers, buns, corn
    ]
    .into_iter()
    .collect();

    // k = 2 clusters; points are neighbors at Jaccard similarity >= 0.4.
    let model = RockBuilder::new(2, 0.4).seed(7).build().fit(&data)?;

    println!("found {} clusters", model.num_clusters());
    for (i, members) in model.clusters().iter().enumerate() {
        println!("  cluster {i}: baskets {members:?}");
    }
    println!(
        "stats: {} link entries, criterion E_l = {:.3}, total time {:?}",
        model.stats().link_entries,
        model.stats().criterion,
        model.stats().timings.total
    );

    assert_eq!(model.num_clusters(), 2);
    assert_eq!(model.clusters()[0], vec![0, 1, 2, 3]);
    assert_eq!(model.clusters()[1], vec![4, 5, 6, 7]);
    Ok(())
}
