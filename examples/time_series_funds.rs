//! Clustering time series the ROCK way: convert numeric daily series to
//! Up/Down categorical transactions, then cluster with links.
//!
//! ```text
//! cargo run --release --example time_series_funds
//! ```

use rock::core::metrics::ContingencyTable;
use rock::datasets::synthetic::FundsModel;
use rock::datasets::timeseries::{returns_to_transaction, UpDownConfig};
use rock::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = FundsModel::scaled(4, 40, 300).seed(5);
    let (series, sectors) = model.generate_returns();
    println!("{} funds in 4 sectors over 300 trading days", series.len());

    // Encode each fund's daily returns as Up/Down items.
    let config = UpDownConfig::default();
    let sample = returns_to_transaction(&series[0], &config);
    println!(
        "fund 0 encodes to {} items (one per non-flat day)",
        sample.len()
    );
    let data: TransactionSet = series
        .iter()
        .map(|s| returns_to_transaction(s, &config))
        .collect();

    let rock = RockBuilder::new(4, 0.55).seed(5).build().fit(&data)?;
    let pred: Vec<Option<u32>> = rock.assignments().iter().map(|a| a.map(|c| c.0)).collect();
    let table = ContingencyTable::new(&pred, &sectors)?;

    println!("\ncluster × sector composition:");
    for c in 0..table.num_clusters() {
        println!(
            "  cluster {c} ({} funds): {:?}",
            table.cluster_size(c),
            table.row(c)
        );
    }
    println!(
        "sector recovery: accuracy {:.4}, NMI {:.4}",
        table.matched_accuracy(),
        table.nmi()
    );
    Ok(())
}
