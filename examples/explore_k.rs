//! Choosing k with the dendrogram: run ROCK once, inspect the goodness
//! profile, cut at the suggested cluster count, and describe each cluster
//! by its characteristic items.
//!
//! ```text
//! cargo run --release --example explore_k
//! ```

use rock::core::summary::ClusterSummary;
use rock::datasets::synthetic::{intro_example, BasketModel};
use rock::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four basket clusters of different sizes plus a couple of bridges.
    let (data, _) = BasketModel::disjoint(4, 30, 12, (4, 7))
        .bridges(3)
        .seed(11)
        .generate();

    // Merge all the way down to 1 cluster, recording the history.
    let model = RockBuilder::new(1, 0.3)
        .record_history(true)
        .neighbor_filter(NeighborFilter::disabled())
        .seed(11)
        .build()
        .fit(&data)?;

    let dendro = model.dendrogram().expect("history was recorded");
    println!(
        "{} points, {} merges, min reachable clusters = {}",
        dendro.num_points(),
        dendro.num_merges(),
        dendro.min_clusters()
    );

    // The goodness profile: within-cluster merges score high, the final
    // cross-cluster merges collapse.
    let profile = dendro.goodness_profile();
    let tail: Vec<String> = profile
        .iter()
        .rev()
        .take(6)
        .map(|g| format!("{g:.3}"))
        .collect();
    println!("last merges' goodness (worst first): {}", tail.join(", "));

    let k = dendro.suggest_k(8).expect("profile long enough");
    println!("suggested k from the goodness cliff: {k}");

    let clusters = dendro.cut(k).expect("valid cut");
    let summaries = ClusterSummary::compute_all(&data, &clusters, 0.5);
    for (i, s) in summaries.iter().enumerate() {
        println!(
            "cluster {i}: {} baskets, characteristic items: {}",
            s.size,
            s.describe(&data, 5)
        );
    }

    // Bonus: on cleanly separated data the QROCK-style shortcut agrees.
    let (clean, _) = intro_example(0);
    let graph = NeighborGraph::compute(&clean, &Jaccard, 0.5, 1)?;
    let comps = connected_components(&graph);
    println!(
        "\nconnected-components shortcut on the clean intro example: {} clusters of sizes {:?}",
        comps.len(),
        comps.iter().map(Vec::len).collect::<Vec<_>>()
    );
    Ok(())
}
