#!/usr/bin/env sh
# Local CI gate — everything runs offline (the workspace has no external
# dependencies by design; see DESIGN.md §Dependencies).
#
#   ./ci.sh            # format check, clippy, build, tests
#
# The same steps run in .github/workflows/ci.yml.
set -eu

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --offline --release --workspace
cargo test --offline --workspace -q

echo "== ci.sh: all green"
