#!/usr/bin/env sh
# Local CI gate — everything runs offline (the workspace has no external
# dependencies by design; see DESIGN.md §Dependencies).
#
#   ./ci.sh            # format check, clippy, rock-analyze, build, tests
#   ./ci.sh --quick    # same gates, but skip the release build (debug
#                      # tests only) — the fast pre-push loop
#
# The same steps run in .github/workflows/ci.yml.
set -eu

quick=0
for arg in "$@"; do
    case "$arg" in
        --quick) quick=1 ;;
        *) echo "ci.sh: unknown argument '$arg' (supported: --quick)" >&2; exit 2 ;;
    esac
done

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== rock-analyze --deny (workspace lint pass)"
cargo run --offline -q -p rock-analyze -- --deny

if [ "$quick" -eq 1 ]; then
    echo "== tier-1 (quick): cargo test -q (debug, no release build)"
    cargo test --offline --workspace -q
else
    echo "== tier-1: cargo build --release && cargo test -q"
    cargo build --offline --release --workspace
    cargo test --offline --workspace -q
fi

# The chaos suite runs as part of the workspace tests above; rerunning it
# as a named gate keeps the robustness contract visible in CI output:
# no fault (poisoned input, budget trip, cancellation, injected I/O
# failure) may panic, and every degraded outcome is a valid partition.
echo "== chaos suite (fault injection, budgets, degradation)"
cargo test --offline -q --test chaos

# Serve gate: the labeling server must build, survive its chaos suite
# (malformed HTTP, truncated bodies, poisoned snapshots, load shedding)
# and answer the 10k-request loopback smoke with labels identical to
# the offline `rock-cluster label` path.
echo "== serve gate (rock-serve build + chaos + loopback smoke)"
cargo build --offline -q -p rock-serve
cargo test --offline -q -p rock-serve
cargo test --offline -q -p rock --test serve_smoke

echo "== ci.sh: all green"
