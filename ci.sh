#!/usr/bin/env sh
# Local CI gate — everything runs offline (the workspace has no external
# dependencies by design; see DESIGN.md §Dependencies).
#
#   ./ci.sh                # every correctness gate, release build
#   ./ci.sh --quick        # same gates, but skip the release build
#                          # (debug tests only) — the fast pre-push loop
#   ./ci.sh --bench        # performance-regression gate only: regenerate
#                          # telemetry metrics and compare them against
#                          # the committed results/BENCH_*.json baselines
#   ./ci.sh --gate <name>  # run exactly one named gate (see --gate help)
#
# A full run appends one line per gate to target/ci/gate_times.txt and
# prints the wall-time table at the end; CI uploads the file as an
# artifact so slow gates are visible without re-reading the log.
#
# The same steps run in .github/workflows/ci.yml.
set -eu

quick=0
bench=0
gate=""
while [ "$#" -gt 0 ]; do
    case "$1" in
        --quick) quick=1 ;;
        --bench) bench=1 ;;
        --gate)
            if [ "$#" -lt 2 ]; then
                echo "ci.sh: --gate needs a name (try --gate help)" >&2
                exit 2
            fi
            shift
            gate="$1"
            ;;
        *)
            echo "ci.sh: unknown argument '$1' (supported: --quick, --bench, --gate <name>)" >&2
            exit 2
            ;;
    esac
    shift
done
if [ "$quick" -eq 1 ] && [ "$bench" -eq 1 ]; then
    echo "ci.sh: --quick and --bench are mutually exclusive" >&2
    exit 2
fi
if [ -n "$gate" ] && { [ "$quick" -eq 1 ] || [ "$bench" -eq 1 ]; }; then
    echo "ci.sh: --gate is mutually exclusive with --quick/--bench" >&2
    exit 2
fi

# ---------------------------------------------------------------- gates
# Each gate is one shell function named gate_<name>. `--gate <name>`
# runs exactly one; a full run executes them all in order, timed.

gate_fmt() {
    echo "== cargo fmt --check"
    cargo fmt --all -- --check
}

gate_clippy() {
    echo "== cargo clippy (all targets, warnings are errors)"
    cargo clippy --offline --workspace --all-targets -- -D warnings
}

gate_analyze() {
    echo "== rock-analyze --deny (workspace lint pass)"
    # The JSON report lands in target/analyze/ so CI can upload it as an
    # artifact when the gate fails (same pattern as the bench gate).
    mkdir -p target/analyze
    if ! cargo run --offline -q -p rock-analyze -- --deny --format=json \
        > target/analyze/findings.json; then
        echo "-- rock-analyze findings (target/analyze/findings.json):" >&2
        cat target/analyze/findings.json >&2
        return 1
    fi
}

gate_tier1() {
    # Unit tests (lib + bin targets), doc tests, and every integration
    # suite that has no gate of its own — each suite runs exactly once.
    if [ "$quick" -eq 1 ]; then
        echo "== tier-1 (quick): cargo test -q (debug, no release build)"
    else
        echo "== tier-1: cargo build --release && cargo test -q"
        cargo build --offline --release --workspace
    fi
    cargo test --offline --workspace --exclude rock-serve -q --lib --bins
    cargo test --offline --workspace --exclude rock-serve -q --doc
    echo "== integration suites (pipeline, proptests, extensions, telemetry, snapshot, neighbors_join, analyzer fixtures)"
    cargo test --offline -q --test pipeline --test proptests --test extensions \
        --test telemetry --test snapshot --test neighbors_join
    cargo test --offline -q -p rock-analyze --test fixtures
}

gate_chaos() {
    # Chaos gate: the robustness contract as a named line in CI output —
    # no fault (poisoned input, budget trip, cancellation, injected I/O
    # failure) may panic, and every degraded outcome is a valid partition.
    echo "== chaos suite (fault injection, budgets, degradation)"
    cargo test --offline -q --test chaos -- --skip stream_
}

gate_stream() {
    # Streaming resume gate: the crash-safe out-of-core contract
    # (DESIGN.md §15) — kill-at-every-chunk-boundary resume is
    # byte-identical, memory trips degrade to valid partial labelings,
    # corrupt recovery state fails closed, injected disk faults are
    # retried.
    echo "== streaming resume suite (checkpoint/resume, degraded mode, disk faults)"
    cargo test --offline -q --test chaos stream_
    # Out-of-core smoke: exp_scale at 1% scale exercises the full cache →
    # stream → checkpoint → resume path end to end, including its
    # built-in pause/resume byte-identity assertion. (The 1M-row run is
    # the separate bench gate.)
    echo "== out-of-core smoke (exp_scale --scale 0.01)"
    cargo run --offline -q -p rock-bench --bin exp_scale -- \
        --scale 0.01 --epochs 1 >/dev/null
}

gate_serve() {
    # Serve gate: the labeling server must build, survive its chaos suite
    # (malformed HTTP, truncated bodies, poisoned snapshots, load
    # shedding, corrupt snapshots mid-swap, concurrent swap+label races)
    # and answer the 10k-request loopback smoke with labels identical to
    # the offline `rock-cluster label` path.
    echo "== serve gate (rock-serve build + chaos + loopback smoke)"
    cargo build --offline -q -p rock-serve
    cargo test --offline -q -p rock-serve
    cargo test --offline -q --test serve_smoke
}

gate_registry() {
    # Registry smoke gate: the multi-model admin plane end to end — load
    # two models, hot-swap between them, label against both, and verify
    # every response is byte-identical to the offline CLI labels for the
    # model that was active at dispatch.
    echo "== registry smoke gate (two models, hot swap, offline byte-equality)"
    cargo test --offline -q --test serve_registry
}

gate_trace() {
    # Trace gate: a real traced run must produce a canonical
    # rock-trace/v1 stream (`rock-trace --check` is strict: emit → parse
    # → re-emit must be byte-identical on every line), render, and export
    # to Chrome JSON.
    echo "== trace gate (traced run + rock-trace --check / report / export)"
    cargo build --offline -q -p rock-trace
    mkdir -p target/trace
    rm -f target/trace/ci.trace target/trace/ci-chrome.json
    cargo run --offline -q -p rock-bench --bin exp_scalability -- \
        --scale 0.05 --epochs 1 --trace target/trace/ci.trace >/dev/null
    cargo run --offline -q -p rock-trace -- target/trace/ci.trace --check
    cargo run --offline -q -p rock-trace -- target/trace/ci.trace >/dev/null
    cargo run --offline -q -p rock-trace -- target/trace/ci.trace \
        --export-chrome target/trace/ci-chrome.json >/dev/null
}

gate_bench() {
    # Wall-time baselines are machine-specific, so this gate is separate
    # from the correctness gates: run it on the machine that committed
    # the baselines (or regenerate them first, see EXPERIMENTS.md).
    # Fresh metrics land in target/bench/ so CI can upload them as an
    # artifact when the comparison fails.
    echo "== bench gate: fresh metrics vs committed results/BENCH_*.json"
    cargo build --offline --release -q -p rock-bench
    mkdir -p target/bench
    rm -f target/bench/BENCH_*.json
    echo "-- exp_scalability (full grid, min of 3 epochs)"
    ./target/release/exp_scalability --metrics target/bench/BENCH_scalability.json >/dev/null
    echo "-- exp_neighbors (indexed join vs brute force, 1/2/4/8 workers)"
    ./target/release/exp_neighbors --metrics target/bench/BENCH_neighbors.json >/dev/null
    echo "-- exp_links (link kernel, 1/2/4/8 workers)"
    ./target/release/exp_links --metrics target/bench/BENCH_links.json >/dev/null
    echo "-- exp_scale (1M-row out-of-core labeling, 64 MiB ceiling)"
    ./target/release/exp_scale --metrics target/bench/BENCH_scale.json >/dev/null
    echo "-- exp_serve (loopback load + batching + reload soak)"
    cargo build --offline --release -q -p rock-serve
    ./target/release/exp_serve --metrics target/bench/BENCH_serve.json >/dev/null
    echo "-- bench_check BENCH_scalability.json"
    # --floor 0.35: the grid's sub-second cells swing well past 25% from
    # scheduler noise on a shared core (different cells each run); the
    # multi-second cells that carry the asymptotics argument still get
    # the full ±25% band, which dwarfs this floor.
    ./target/release/bench_check \
        --baseline results/BENCH_scalability.json \
        --fresh target/bench/BENCH_scalability.json \
        --floor 0.35
    echo "-- bench_check BENCH_neighbors.json"
    # Same floor rationale: the 1k join cells finish in tens of
    # milliseconds; the 20k cells that carry the speedup argument keep
    # the full relative band.
    ./target/release/bench_check \
        --baseline results/BENCH_neighbors.json \
        --fresh target/bench/BENCH_neighbors.json \
        --floor 0.35
    echo "-- bench_check BENCH_links.json"
    ./target/release/bench_check \
        --baseline results/BENCH_links.json \
        --fresh target/bench/BENCH_links.json
    echo "-- bench_check BENCH_scale.json"
    ./target/release/bench_check \
        --baseline results/BENCH_scale.json \
        --fresh target/bench/BENCH_scale.json
    # Loopback serving throughput swings ±30% run to run on small
    # machines (the load generator and the server share the cores, so
    # scheduler noise lands directly in the rps/pps columns); the wider
    # tolerance still flags a real regression — the batching win being
    # defended here is >5× the floor.
    echo "-- bench_check BENCH_serve.json (tolerance 0.5: shared-core loopback noise)"
    ./target/release/bench_check \
        --baseline results/BENCH_serve.json \
        --fresh target/bench/BENCH_serve.json \
        --tolerance 0.5
}

# Full-run gate order. `bench` is deliberately absent: wall-time
# baselines are machine-specific, so it only runs when asked for
# (--bench or --gate bench) — same contract as before the selector.
GATES="fmt clippy analyze tier1 chaos stream serve registry trace"

list_gates() {
    echo "ci.sh gates (run one with --gate <name>):"
    echo "  fmt       cargo fmt --check"
    echo "  clippy    cargo clippy, warnings are errors"
    echo "  analyze   rock-analyze --deny lint pass"
    echo "  tier1     release build + unit/doc tests + integration suites"
    echo "  chaos     fault-injection suite (budgets, degradation)"
    echo "  stream    streaming resume suite + out-of-core smoke"
    echo "  serve     rock-serve build + chaos + loopback smoke"
    echo "  registry  multi-model admin plane smoke"
    echo "  trace     traced run + rock-trace check/report/export"
    echo "  bench     regression gate vs results/BENCH_*.json (not in full runs)"
}

if [ "$gate" = "help" ]; then
    list_gates
    exit 0
fi

if [ -n "$gate" ]; then
    case " $GATES bench " in
        *" $gate "*) "gate_$gate" ;;
        *)
            echo "ci.sh: unknown gate '$gate'" >&2
            list_gates >&2
            exit 2
            ;;
    esac
    echo "== ci.sh --gate $gate: green"
    exit 0
fi

if [ "$bench" -eq 1 ]; then
    gate_bench
    echo "== ci.sh --bench: all green"
    exit 0
fi

# ------------------------------------------------------------- full run
# Each gate is timed; the per-gate wall times accumulate in
# target/ci/gate_times.txt as gates finish (a failed run keeps the
# lines of every gate that completed) and the table prints at the end.
times_file="target/ci/gate_times.txt"
mkdir -p target/ci
: > "$times_file"

for g in $GATES; do
    start=$(date +%s)
    "gate_$g"
    end=$(date +%s)
    printf '%-10s %5ss\n' "$g" "$((end - start))" >> "$times_file"
done

echo ""
echo "== gate wall times ($times_file)"
cat "$times_file"
echo "== ci.sh: all green"
