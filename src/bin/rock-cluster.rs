//! `rock-cluster` — cluster a categorical CSV file from the command line.
//!
//! ```text
//! rock-cluster --input data.csv --k 2 --theta 0.5 \
//!     [--label first|last|none|COLUMN] [--ignore 0,3] [--missing '?'] \
//!     [--sample N | --chernoff UMIN,XI,DELTA] [--min-goodness G] \
//!     [--seed N] [--threads N] [--summary TOP] [--output assignments.txt] \
//!     [--metrics metrics.json] [--progress] [--log-level info]
//! ```
//!
//! Reads a UCI-style categorical CSV, runs the full ROCK pipeline, prints
//! a cluster report (scored against the label column when present), and
//! optionally writes per-point assignments in the plain-text format of
//! `rock_core::export`. With `--metrics FILE` the run's telemetry (phase
//! wall times, pipeline counters, memory estimates) is written to `FILE`
//! as pretty-printed JSON in the `rock-metrics/v1` schema; `--progress`
//! and `--log-level` stream phase events to stderr while it runs.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use rock::core::export::write_assignments;
use rock::core::metrics::{cluster_breakdown, densify_labels, matched_accuracy, purity};
use rock::core::summary::ClusterSummary;
use rock::core::telemetry::StderrSink;
use rock::datasets::baskets::load_baskets;
use rock::datasets::loader::{load_labeled, LabelPosition, LoadConfig};
use rock::prelude::*;

/// Input file format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// Categorical CSV with optional label column.
    Table,
    /// Market baskets: one whitespace/comma-separated transaction per line.
    Basket,
}

/// Parsed command-line options.
#[derive(Debug, Clone)]
struct Options {
    input: PathBuf,
    format: Format,
    k: usize,
    theta: f64,
    label: LabelPosition,
    ignore: Vec<usize>,
    missing: String,
    sample: SampleStrategy,
    min_goodness: Option<f64>,
    seed: u64,
    threads: usize,
    summary_top: usize,
    output: Option<PathBuf>,
    metrics: Option<PathBuf>,
    progress: bool,
    log_level: Level,
}

const USAGE: &str = "usage: rock-cluster --input FILE --k K --theta T \
[--format table|basket] [--label first|last|none|IDX] [--ignore i,j,...] \
[--missing TOKEN] [--sample N | --chernoff UMIN,XI,DELTA] \
[--min-goodness G] [--seed N] [--threads N] [--summary TOP] [--output FILE] \
[--metrics FILE] [--progress] [--log-level off|error|info|debug]";

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
    let mut input: Option<PathBuf> = None;
    let mut format = Format::Table;
    let mut k: Option<usize> = None;
    let mut theta: Option<f64> = None;
    let mut label = LabelPosition::Last;
    let mut ignore = Vec::new();
    let mut missing = "?".to_owned();
    let mut sample = SampleStrategy::All;
    let mut min_goodness = None;
    let mut seed = 42u64;
    let mut threads = 0usize;
    let mut summary_top = 0usize;
    let mut output = None;
    let mut metrics = None;
    let mut progress = false;
    let mut log_level = Level::Off;

    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--input" => input = Some(PathBuf::from(value("--input")?)),
            "--format" => {
                format = match value("--format")?.as_str() {
                    "table" => Format::Table,
                    "basket" => Format::Basket,
                    other => return Err(format!("--format: expected table|basket, got {other:?}")),
                }
            }
            "--k" => k = Some(value("--k")?.parse().map_err(|e| format!("--k: {e}"))?),
            "--theta" => {
                theta = Some(
                    value("--theta")?
                        .parse()
                        .map_err(|e| format!("--theta: {e}"))?,
                )
            }
            "--label" => {
                label = match value("--label")?.as_str() {
                    "first" => LabelPosition::First,
                    "last" => LabelPosition::Last,
                    "none" => LabelPosition::None,
                    idx => LabelPosition::Column(
                        idx.parse()
                            .map_err(|_| format!("--label: bad value {idx:?}"))?,
                    ),
                }
            }
            "--ignore" => {
                for part in value("--ignore")?.split(',') {
                    ignore.push(part.trim().parse().map_err(|e| format!("--ignore: {e}"))?);
                }
            }
            "--missing" => missing = value("--missing")?,
            "--sample" => {
                sample = SampleStrategy::Fixed(
                    value("--sample")?
                        .parse()
                        .map_err(|e| format!("--sample: {e}"))?,
                )
            }
            "--chernoff" => {
                let raw = value("--chernoff")?;
                let parts: Vec<&str> = raw.split(',').collect();
                let [u_min, xi, delta] = parts.as_slice() else {
                    return Err(format!("--chernoff expects UMIN,XI,DELTA, got {raw:?}"));
                };
                sample = SampleStrategy::Chernoff {
                    u_min: u_min
                        .trim()
                        .parse()
                        .map_err(|e| format!("--chernoff u_min: {e}"))?,
                    xi: xi
                        .trim()
                        .parse()
                        .map_err(|e| format!("--chernoff xi: {e}"))?,
                    delta: delta
                        .trim()
                        .parse()
                        .map_err(|e| format!("--chernoff delta: {e}"))?,
                };
            }
            "--min-goodness" => {
                min_goodness = Some(
                    value("--min-goodness")?
                        .parse()
                        .map_err(|e| format!("--min-goodness: {e}"))?,
                )
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--summary" => {
                summary_top = value("--summary")?
                    .parse()
                    .map_err(|e| format!("--summary: {e}"))?
            }
            "--output" => output = Some(PathBuf::from(value("--output")?)),
            "--metrics" => metrics = Some(PathBuf::from(value("--metrics")?)),
            "--progress" => progress = true,
            "--log-level" => {
                log_level = value("--log-level")?
                    .parse()
                    .map_err(|e| format!("--log-level: {e}"))?
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(Options {
        input: input.ok_or_else(|| format!("--input is required\n{USAGE}"))?,
        format,
        k: k.ok_or_else(|| format!("--k is required\n{USAGE}"))?,
        theta: theta.ok_or_else(|| format!("--theta is required\n{USAGE}"))?,
        label,
        ignore,
        missing,
        sample,
        min_goodness,
        seed,
        threads,
        summary_top,
        output,
        metrics,
        progress,
        log_level,
    })
}

fn run(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let (data, labels) = match opts.format {
        Format::Table => {
            let load = LoadConfig {
                label: opts.label,
                ignore_columns: opts.ignore.clone(),
                missing: opts.missing.clone(),
                ..LoadConfig::default()
            };
            let loaded = load_labeled(&opts.input, &load)?;
            eprintln!(
                "loaded {} records x {} attributes ({:.1}% missing) from {}",
                loaded.table.len(),
                loaded.table.num_attributes(),
                100.0 * loaded.table.missing_fraction(),
                opts.input.display()
            );
            (loaded.table.to_transactions(), loaded.labels)
        }
        Format::Basket => {
            let data = load_baskets(&opts.input, None)?;
            eprintln!(
                "loaded {} baskets over {} distinct items from {}",
                data.len(),
                data.universe(),
                opts.input.display()
            );
            (data, Vec::new())
        }
    };

    let mut builder = RockBuilder::new(opts.k, opts.theta)
        .sample(opts.sample)
        .seed(opts.seed)
        .threads(opts.threads);
    if let Some(g) = opts.min_goodness {
        builder = builder.min_goodness(g);
    }
    let observer = if opts.progress || opts.log_level > Level::Off {
        Observer::with_sink(
            Arc::new(StderrSink::new(opts.progress)),
            opts.log_level.max(Level::Error),
        )
    } else {
        Observer::new()
    };
    let model = builder.build().fit_observed(&data, &observer)?;
    let stats = model.stats();
    eprintln!(
        "clustered sample of {} (avg degree {:.1}) into {} clusters, {} outliers, in {:?}",
        stats.sample_size,
        stats.avg_degree,
        model.num_clusters(),
        model.outliers().len(),
        stats.timings.total
    );

    // Report.
    if labels.is_empty() {
        println!("cluster sizes: {:?}", model.cluster_sizes());
    } else {
        let truth = densify_labels(&labels);
        let pred: Vec<Option<u32>> = model.assignments().iter().map(|a| a.map(|c| c.0)).collect();
        println!("cluster  size  class-breakdown");
        for (i, (size, classes)) in cluster_breakdown(&pred, &truth)?.iter().enumerate() {
            println!("C{i:<6}  {size:<4}  {classes:?}");
        }
        println!(
            "accuracy (optimal matching) = {:.4}, purity = {:.4}",
            matched_accuracy(&pred, &truth)?,
            purity(&pred, &truth)?
        );
    }
    if opts.summary_top > 0 {
        for (i, s) in ClusterSummary::compute_all(&data, model.clusters(), 0.5)
            .iter()
            .enumerate()
        {
            println!(
                "C{i} characteristic items: {}",
                s.describe(&data, opts.summary_top)
            );
        }
    }

    if let Some(path) = &opts.output {
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        write_assignments(&mut file, model.assignments())?;
        eprintln!("assignments written to {}", path.display());
    }

    if let Some(path) = &opts.metrics {
        let run = RunInfo {
            experiment: "cli".to_owned(),
            n: data.len(),
            k: opts.k,
            theta: opts.theta,
            seed: opts.seed,
            sample_size: stats.sample_size,
            clusters: model.num_clusters(),
            outliers: model.outliers().len(),
        };
        let metrics = Metrics::collect(&observer, run, stats.timings.total);
        std::fs::write(path, metrics.to_json() + "\n")?;
        eprintln!("metrics written to {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn requires_mandatory_flags() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--input", "x.csv"]).is_err());
        assert!(parse(&["--input", "x.csv", "--k", "2"]).is_err());
        assert!(parse(&["--input", "x.csv", "--k", "2", "--theta", "0.5"]).is_ok());
    }

    #[test]
    fn parses_basket_format() {
        let o = parse(&[
            "--input", "b.txt", "--k", "2", "--theta", "0.4", "--format", "basket",
        ])
        .unwrap();
        assert_eq!(o.format, Format::Basket);
        assert!(
            parse(&["--input", "b.txt", "--k", "2", "--theta", "0.4", "--format", "json",])
                .is_err()
        );
    }

    #[test]
    fn end_to_end_on_basket_file() {
        let dir = std::env::temp_dir().join("rock-cli-basket-test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("baskets.txt");
        let mut text = String::new();
        for i in 0..6 {
            text.push_str(&format!("bread milk butter jam{i}\n"));
        }
        for i in 0..6 {
            text.push_str(&format!("charcoal burgers buns sauce{i}\n"));
        }
        std::fs::write(&input, text).unwrap();
        let opts = Options {
            input: input.clone(),
            format: Format::Basket,
            k: 2,
            theta: 0.4,
            label: LabelPosition::None,
            ignore: vec![],
            missing: "?".into(),
            sample: SampleStrategy::All,
            min_goodness: None,
            seed: 1,
            threads: 1,
            summary_top: 2,
            output: None,
            metrics: None,
            progress: false,
            log_level: Level::Off,
        };
        run(&opts).unwrap();
        std::fs::remove_file(input).ok();
    }

    #[test]
    fn parses_full_flag_set() {
        let o = parse(&[
            "--input",
            "d.csv",
            "--k",
            "3",
            "--theta",
            "0.7",
            "--label",
            "first",
            "--ignore",
            "0,2",
            "--missing",
            "NA",
            "--sample",
            "500",
            "--min-goodness",
            "0.1",
            "--seed",
            "9",
            "--threads",
            "4",
            "--summary",
            "5",
            "--output",
            "out.txt",
            "--metrics",
            "m.json",
            "--progress",
            "--log-level",
            "debug",
        ])
        .unwrap();
        assert_eq!(o.k, 3);
        assert_eq!(o.theta, 0.7);
        assert_eq!(o.label, LabelPosition::First);
        assert_eq!(o.ignore, vec![0, 2]);
        assert_eq!(o.missing, "NA");
        assert_eq!(o.sample, SampleStrategy::Fixed(500));
        assert_eq!(o.min_goodness, Some(0.1));
        assert_eq!(o.seed, 9);
        assert_eq!(o.threads, 4);
        assert_eq!(o.summary_top, 5);
        assert_eq!(o.output, Some(PathBuf::from("out.txt")));
        assert_eq!(o.metrics, Some(PathBuf::from("m.json")));
        assert!(o.progress);
        assert_eq!(o.log_level, Level::Debug);
    }

    #[test]
    fn parses_chernoff_and_label_index() {
        let o = parse(&[
            "--input",
            "d.csv",
            "--k",
            "2",
            "--theta",
            "0.5",
            "--chernoff",
            "100,0.25,0.05",
            "--label",
            "3",
        ])
        .unwrap();
        assert_eq!(
            o.sample,
            SampleStrategy::Chernoff {
                u_min: 100,
                xi: 0.25,
                delta: 0.05
            }
        );
        assert_eq!(o.label, LabelPosition::Column(3));
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse(&["--input", "x", "--k", "two", "--theta", "0.5"]).is_err());
        assert!(parse(&[
            "--input",
            "x",
            "--k",
            "2",
            "--theta",
            "0.5",
            "--chernoff",
            "1,2"
        ])
        .is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--help"]).is_err());
        assert!(parse(&[
            "--input",
            "x",
            "--k",
            "2",
            "--theta",
            "0.5",
            "--log-level",
            "verbose",
        ])
        .is_err());
    }

    #[test]
    fn end_to_end_on_temp_csv() {
        let dir = std::env::temp_dir().join("rock-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("toy.csv");
        let mut csv = String::new();
        for _ in 0..10 {
            csv.push_str("a,b,c,left\n");
            csv.push_str("x,y,z,right\n");
        }
        std::fs::write(&input, csv).unwrap();
        let output = dir.join("assignments.txt");
        let metrics = dir.join("metrics.json");
        let opts = Options {
            input: input.clone(),
            format: Format::Table,
            k: 2,
            theta: 0.5,
            label: LabelPosition::Last,
            ignore: vec![],
            missing: "?".into(),
            sample: SampleStrategy::All,
            min_goodness: None,
            seed: 1,
            threads: 1,
            summary_top: 3,
            output: Some(output.clone()),
            metrics: Some(metrics.clone()),
            progress: false,
            log_level: Level::Off,
        };
        run(&opts).unwrap();
        let written = std::fs::read_to_string(&output).unwrap();
        assert!(written.starts_with("rock-assignments v1"));
        assert!(written.contains("n=20 k=2"));
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("\"schema\": \"rock-metrics/v1\""));
        assert!(json.contains("\"similarity_comparisons\""));
        std::fs::remove_file(input).ok();
        std::fs::remove_file(output).ok();
        std::fs::remove_file(metrics).ok();
    }
}
