//! `rock-cluster` — cluster a categorical CSV file from the command line.
//!
//! ```text
//! rock-cluster --input data.csv --k 2 --theta 0.5 \
//!     [--label first|last|none|COLUMN] [--ignore 0,3] [--missing '?'] \
//!     [--sample N | --chernoff UMIN,XI,DELTA] [--min-goodness G] \
//!     [--seed N] [--threads N] [--summary TOP] [--output assignments.txt] \
//!     [--metrics metrics.json] [--progress] [--log-level info] \
//!     [--time-budget SECS] [--step-budget N] [--mem-budget BYTES[K|M|G]] \
//!     [--on-error fail|recover] \
//!     [--save-model model.rockmodel] [--outlier-policy mark|nearest]
//!
//! rock-cluster label --model model.rockmodel --input new.csv \
//!     [--format table|basket] [--label first|last|none|COLUMN] \
//!     [--ignore 0,3] [--missing '?'] [--output labels.txt] \
//!     [--stream] [--cache FILE] [--checkpoint FILE] [--chunk-rows N] \
//!     [--mem-budget BYTES[K|M|G]] [--threads N]
//! ```
//!
//! Reads a UCI-style categorical CSV, runs the full ROCK pipeline, prints
//! a cluster report (scored against the label column when present), and
//! optionally writes per-point assignments in the plain-text format of
//! `rock_core::export`. With `--metrics FILE` the run's telemetry (phase
//! wall times, pipeline counters, memory estimates) is written to `FILE`
//! as pretty-printed JSON in the `rock-metrics/v1` schema; `--progress`
//! and `--log-level` stream phase events to stderr while it runs.
//!
//! **Guardrails.** `--time-budget`, `--step-budget` and `--mem-budget`
//! bound the run (wall seconds, agglomeration merge steps, estimated
//! tracked bytes). When a budget trips, the pipeline degrades to the best
//! valid partition built so far; `--on-error recover` (the default is
//! `fail`) accepts that partition and exits 0, also switching ingestion
//! to lenient mode so malformed rows are quarantined instead of fatal.
//! Metrics are flushed on *every* exit path — complete, degraded, or
//! error — and degraded runs carry a machine-readable `degradation`
//! block. Exit codes are stable: 0 success/recovered, 1 internal, 2
//! usage, 3 I/O, 4 malformed input, 5 invalid configuration, 6 budget
//! exhausted or cancelled under `--on-error fail`.
//!
//! **Snapshots.** `--save-model PATH` persists the fitted model as a
//! `rock-model/v1` snapshot (`rock_core::snapshot`): the §4.2 labeling
//! closure — representatives `L_i`, θ, `f(θ)`, the interned item table
//! and an outlier policy — behind a content checksum. The `label`
//! subcommand loads a snapshot and batch-labels a new file without
//! re-clustering, writing `rock-assignments v1` to `--output` (or
//! stdout); the same snapshot also powers the `rock-serve` HTTP server.
//! Labeling is deterministic: the same snapshot and input always produce
//! byte-identical output.
//!
//! **Streaming.** `label --stream` labels out-of-core: the input is
//! converted once into a chunked `rock-cache/v1` binary cache (or an
//! existing cache is reused via `--cache`), then labeled chunk by chunk
//! with bounded memory, appending to a crash-safe partial file and
//! checkpointing after every chunk (`rock-checkpoint/v1`, `--checkpoint`,
//! default `OUTPUT.ckpt`). A killed or budget-tripped run resumes from
//! its checkpoint and produces byte-identical output to an uninterrupted
//! run; a memory trip under `--mem-budget` degrades to a *valid* partial
//! assignments file and exits 6, leaving the checkpoint in place so a
//! rerun finishes the job. `--stream` requires `--output`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use rock::core::export::write_assignments;
use rock::core::metrics::{cluster_breakdown, densify_labels, matched_accuracy, purity};
use rock::core::summary::ClusterSummary;
use rock::core::telemetry::StderrSink;
use rock::datasets::baskets::load_baskets;
use rock::datasets::cache::{build_cache, DatasetCache};
use rock::datasets::loader::{load_labeled, IngestMode, LabelPosition, LoadConfig};
use rock::prelude::*;

/// Input file format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// Categorical CSV with optional label column.
    Table,
    /// Market baskets: one whitespace/comma-separated transaction per line.
    Basket,
}

/// What to do when a budget trips or the input is dirty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OnError {
    /// Budget trips are fatal (exit 6); malformed rows are fatal (exit 4).
    Fail,
    /// Degrade gracefully: accept the partial partition (exit 0) and
    /// quarantine malformed rows during ingestion.
    Recover,
}

/// Parsed command-line options.
#[derive(Debug, Clone)]
struct Options {
    input: PathBuf,
    format: Format,
    k: usize,
    theta: f64,
    label: LabelPosition,
    ignore: Vec<usize>,
    missing: String,
    sample: SampleStrategy,
    min_goodness: Option<f64>,
    seed: u64,
    /// Workers for the row-sharded phases (neighbors, links, labeling);
    /// 0 = one per CPU. Output is identical for every value.
    threads: usize,
    summary_top: usize,
    output: Option<PathBuf>,
    metrics: Option<PathBuf>,
    progress: bool,
    log_level: Level,
    time_budget: Option<f64>,
    step_budget: Option<u64>,
    mem_budget: Option<u64>,
    on_error: OnError,
    save_model: Option<PathBuf>,
    outlier_policy: OutlierPolicy,
    /// Write a `rock-trace/v1` NDJSON event stream of the fit here
    /// (analyze with `rock-trace`). `None` = tracing disabled.
    trace: Option<PathBuf>,
}

/// Parsed options for the `label` subcommand.
#[derive(Debug, Clone)]
struct LabelOptions {
    model: PathBuf,
    input: PathBuf,
    format: Format,
    label: LabelPosition,
    ignore: Vec<usize>,
    missing: String,
    output: Option<PathBuf>,
    /// Label out-of-core through the chunked cache + checkpoint path.
    stream: bool,
    /// `rock-cache/v1` file to stream from (built from `--input` when
    /// absent). Default: `INPUT.rockcache`.
    cache: Option<PathBuf>,
    /// `rock-checkpoint/v1` file. Default: `OUTPUT.ckpt`.
    checkpoint: Option<PathBuf>,
    /// Rows per streamed chunk.
    chunk_rows: usize,
    /// Memory ceiling for the streaming run (tracked bytes).
    mem_budget: Option<u64>,
    /// Workers for the chunk labeling kernel; 0 = one per CPU.
    threads: usize,
}

/// Which entry point the command line selected.
#[derive(Debug, Clone)]
enum Command {
    /// Fit a model (optionally saving a snapshot).
    Fit(Box<Options>),
    /// Batch-label a file against a saved snapshot.
    Label(Box<LabelOptions>),
}

const USAGE: &str = "usage: rock-cluster --input FILE --k K --theta T \
[--format table|basket] [--label first|last|none|IDX] [--ignore i,j,...] \
[--missing TOKEN] [--sample N | --chernoff UMIN,XI,DELTA] \
[--min-goodness G] [--seed N] [--threads N] [--summary TOP] [--output FILE] \
[--metrics FILE] [--progress] [--log-level off|error|info|debug] \
[--time-budget SECS] [--step-budget N] [--mem-budget BYTES[K|M|G]] \
[--on-error fail|recover] [--save-model FILE] [--outlier-policy mark|nearest] \
[--trace FILE]\n\
       rock-cluster label --model FILE --input FILE [--format table|basket] \
[--label first|last|none|IDX] [--ignore i,j,...] [--missing TOKEN] \
[--output FILE] [--stream] [--cache FILE] [--checkpoint FILE] \
[--chunk-rows N] [--mem-budget BYTES[K|M|G]] [--threads N]";

/// Parses a byte count with an optional K/M/G (binary) suffix.
fn parse_mem_budget(s: &str) -> Result<u64, String> {
    let t = s.trim();
    let (digits, shift) = match t.chars().last() {
        Some('k') | Some('K') => (&t[..t.len() - 1], 10),
        Some('m') | Some('M') => (&t[..t.len() - 1], 20),
        Some('g') | Some('G') => (&t[..t.len() - 1], 30),
        _ => (t, 0),
    };
    let base: u64 = digits
        .trim()
        .parse()
        .map_err(|e| format!("--mem-budget: {e}"))?;
    base.checked_mul(1u64 << shift)
        .ok_or_else(|| format!("--mem-budget: {t:?} overflows u64"))
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
    let mut input: Option<PathBuf> = None;
    let mut format = Format::Table;
    let mut k: Option<usize> = None;
    let mut theta: Option<f64> = None;
    let mut label = LabelPosition::Last;
    let mut ignore = Vec::new();
    let mut missing = "?".to_owned();
    let mut sample = SampleStrategy::All;
    let mut min_goodness = None;
    let mut seed = 42u64;
    let mut threads = 0usize;
    let mut summary_top = 0usize;
    let mut output = None;
    let mut metrics = None;
    let mut progress = false;
    let mut log_level = Level::Off;
    let mut time_budget = None;
    let mut step_budget = None;
    let mut mem_budget = None;
    let mut on_error = OnError::Fail;
    let mut save_model = None;
    let mut outlier_policy = OutlierPolicy::Mark;
    let mut trace = None;

    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--input" => input = Some(PathBuf::from(value("--input")?)),
            "--format" => {
                format = match value("--format")?.as_str() {
                    "table" => Format::Table,
                    "basket" => Format::Basket,
                    other => return Err(format!("--format: expected table|basket, got {other:?}")),
                }
            }
            "--k" => k = Some(value("--k")?.parse().map_err(|e| format!("--k: {e}"))?),
            "--theta" => {
                theta = Some(
                    value("--theta")?
                        .parse()
                        .map_err(|e| format!("--theta: {e}"))?,
                )
            }
            "--label" => {
                label = match value("--label")?.as_str() {
                    "first" => LabelPosition::First,
                    "last" => LabelPosition::Last,
                    "none" => LabelPosition::None,
                    idx => LabelPosition::Column(
                        idx.parse()
                            .map_err(|_| format!("--label: bad value {idx:?}"))?,
                    ),
                }
            }
            "--ignore" => {
                for part in value("--ignore")?.split(',') {
                    ignore.push(part.trim().parse().map_err(|e| format!("--ignore: {e}"))?);
                }
            }
            "--missing" => missing = value("--missing")?,
            "--sample" => {
                sample = SampleStrategy::Fixed(
                    value("--sample")?
                        .parse()
                        .map_err(|e| format!("--sample: {e}"))?,
                )
            }
            "--chernoff" => {
                let raw = value("--chernoff")?;
                let parts: Vec<&str> = raw.split(',').collect();
                let [u_min, xi, delta] = parts.as_slice() else {
                    return Err(format!("--chernoff expects UMIN,XI,DELTA, got {raw:?}"));
                };
                sample = SampleStrategy::Chernoff {
                    u_min: u_min
                        .trim()
                        .parse()
                        .map_err(|e| format!("--chernoff u_min: {e}"))?,
                    xi: xi
                        .trim()
                        .parse()
                        .map_err(|e| format!("--chernoff xi: {e}"))?,
                    delta: delta
                        .trim()
                        .parse()
                        .map_err(|e| format!("--chernoff delta: {e}"))?,
                };
            }
            "--min-goodness" => {
                min_goodness = Some(
                    value("--min-goodness")?
                        .parse()
                        .map_err(|e| format!("--min-goodness: {e}"))?,
                )
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--summary" => {
                summary_top = value("--summary")?
                    .parse()
                    .map_err(|e| format!("--summary: {e}"))?
            }
            "--output" => output = Some(PathBuf::from(value("--output")?)),
            "--metrics" => metrics = Some(PathBuf::from(value("--metrics")?)),
            "--progress" => progress = true,
            "--log-level" => {
                log_level = value("--log-level")?
                    .parse()
                    .map_err(|e| format!("--log-level: {e}"))?
            }
            "--time-budget" => {
                let secs: f64 = value("--time-budget")?
                    .parse()
                    .map_err(|e| format!("--time-budget: {e}"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(format!("--time-budget: {secs} is not a valid duration"));
                }
                time_budget = Some(secs);
            }
            "--step-budget" => {
                step_budget = Some(
                    value("--step-budget")?
                        .parse()
                        .map_err(|e| format!("--step-budget: {e}"))?,
                )
            }
            "--mem-budget" => mem_budget = Some(parse_mem_budget(&value("--mem-budget")?)?),
            "--save-model" => save_model = Some(PathBuf::from(value("--save-model")?)),
            "--trace" => trace = Some(PathBuf::from(value("--trace")?)),
            "--outlier-policy" => {
                let raw = value("--outlier-policy")?;
                outlier_policy = OutlierPolicy::from_name(&raw).ok_or_else(|| {
                    format!("--outlier-policy: expected mark|nearest, got {raw:?}")
                })?;
            }
            "--on-error" => {
                on_error = match value("--on-error")?.as_str() {
                    "fail" => OnError::Fail,
                    "recover" => OnError::Recover,
                    other => {
                        return Err(format!("--on-error: expected fail|recover, got {other:?}"))
                    }
                }
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(Options {
        input: input.ok_or_else(|| format!("--input is required\n{USAGE}"))?,
        format,
        k: k.ok_or_else(|| format!("--k is required\n{USAGE}"))?,
        theta: theta.ok_or_else(|| format!("--theta is required\n{USAGE}"))?,
        label,
        ignore,
        missing,
        sample,
        min_goodness,
        seed,
        threads,
        summary_top,
        output,
        metrics,
        progress,
        log_level,
        time_budget,
        step_budget,
        mem_budget,
        on_error,
        save_model,
        outlier_policy,
        trace,
    })
}

/// Parses the `label` subcommand's flags (the leading `label` token has
/// already been consumed).
fn parse_label_args<I: IntoIterator<Item = String>>(args: I) -> Result<LabelOptions, String> {
    let mut model: Option<PathBuf> = None;
    let mut input: Option<PathBuf> = None;
    let mut format = Format::Table;
    let mut label = LabelPosition::None;
    let mut ignore = Vec::new();
    let mut missing = "?".to_owned();
    let mut output = None;
    let mut stream = false;
    let mut cache = None;
    let mut checkpoint = None;
    let mut chunk_rows = 4096usize;
    let mut mem_budget = None;
    let mut threads = 0usize;

    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--model" => model = Some(PathBuf::from(value("--model")?)),
            "--input" => input = Some(PathBuf::from(value("--input")?)),
            "--format" => {
                format = match value("--format")?.as_str() {
                    "table" => Format::Table,
                    "basket" => Format::Basket,
                    other => return Err(format!("--format: expected table|basket, got {other:?}")),
                }
            }
            "--label" => {
                label = match value("--label")?.as_str() {
                    "first" => LabelPosition::First,
                    "last" => LabelPosition::Last,
                    "none" => LabelPosition::None,
                    idx => LabelPosition::Column(
                        idx.parse()
                            .map_err(|_| format!("--label: bad value {idx:?}"))?,
                    ),
                }
            }
            "--ignore" => {
                for part in value("--ignore")?.split(',') {
                    ignore.push(part.trim().parse().map_err(|e| format!("--ignore: {e}"))?);
                }
            }
            "--missing" => missing = value("--missing")?,
            "--output" => output = Some(PathBuf::from(value("--output")?)),
            "--stream" => stream = true,
            "--cache" => cache = Some(PathBuf::from(value("--cache")?)),
            "--checkpoint" => checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--chunk-rows" => {
                chunk_rows = value("--chunk-rows")?
                    .parse()
                    .map_err(|e| format!("--chunk-rows: {e}"))?;
                if chunk_rows == 0 {
                    return Err("--chunk-rows must be at least 1".to_owned());
                }
            }
            "--mem-budget" => mem_budget = Some(parse_mem_budget(&value("--mem-budget")?)?),
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if stream && output.is_none() {
        return Err(format!("--stream requires --output\n{USAGE}"));
    }
    Ok(LabelOptions {
        model: model.ok_or_else(|| format!("--model is required\n{USAGE}"))?,
        input: input.ok_or_else(|| format!("--input is required\n{USAGE}"))?,
        format,
        label,
        ignore,
        missing,
        output,
        stream,
        cache,
        checkpoint,
        chunk_rows,
        mem_budget,
        threads,
    })
}

/// Dispatches between the fit entry point and the `label` subcommand.
fn parse_command<I: IntoIterator<Item = String>>(args: I) -> Result<Command, String> {
    let mut it = args.into_iter().peekable();
    if it.peek().map(String::as_str) == Some("label") {
        it.next();
        return parse_label_args(it).map(|o| Command::Label(Box::new(o)));
    }
    parse_args(it).map(|o| Command::Fit(Box::new(o)))
}

/// Writes the `rock-metrics/v1` document for this run, whatever the exit
/// path: `model`/`degradation` are whatever is known at that point
/// (zeros/absent when the pipeline failed before producing a model).
/// Metrics-write failures are reported but never mask the run's outcome.
fn write_metrics(
    opts: &Options,
    observer: &Observer,
    model: Option<&RockModel>,
    degradation: Option<&Degradation>,
    n: usize,
    total: Duration,
) {
    let Some(path) = &opts.metrics else {
        return;
    };
    let run = RunInfo {
        experiment: "cli".to_owned(),
        n,
        k: opts.k,
        theta: opts.theta,
        seed: opts.seed,
        sample_size: model.map_or(0, |m| m.stats().sample_size),
        clusters: model.map_or(0, |m| m.num_clusters()),
        outliers: model.map_or(0, |m| m.outliers().len()),
    };
    let mut metrics = Metrics::collect(observer, run, total);
    if let Some(d) = degradation {
        metrics = metrics.with_degradation(d.clone());
    }
    match std::fs::write(path, metrics.to_json() + "\n") {
        Ok(()) => eprintln!("metrics written to {}", path.display()),
        Err(e) => eprintln!(
            "warning: could not write metrics to {}: {e}",
            path.display()
        ),
    }
}

fn run(opts: &Options) -> Result<(), RockError> {
    let (data, labels) = match opts.format {
        Format::Table => {
            let load = LoadConfig {
                label: opts.label,
                ignore_columns: opts.ignore.clone(),
                missing: opts.missing.clone(),
                mode: match opts.on_error {
                    OnError::Fail => IngestMode::Strict,
                    OnError::Recover => IngestMode::lenient(),
                },
                ..LoadConfig::default()
            };
            let loaded = load_labeled(&opts.input, &load)?;
            eprintln!(
                "loaded {} records x {} attributes ({:.1}% missing) from {}",
                loaded.table.len(),
                loaded.table.num_attributes(),
                100.0 * loaded.table.missing_fraction(),
                opts.input.display()
            );
            if !loaded.report.is_clean() {
                eprintln!(
                    "quarantined {} of {} rows ({:.1}%), first at line {}",
                    loaded.report.quarantined.len(),
                    loaded.report.rows_read,
                    100.0 * loaded.report.quarantine_fraction(),
                    loaded.report.quarantined[0].line
                );
            }
            (loaded.table.to_transactions(), loaded.labels)
        }
        Format::Basket => {
            let data = load_baskets(&opts.input, None)?;
            eprintln!(
                "loaded {} baskets over {} distinct items from {}",
                data.len(),
                data.universe(),
                opts.input.display()
            );
            (data, Vec::new())
        }
    };

    let mut builder = RockBuilder::new(opts.k, opts.theta)
        .sample(opts.sample)
        .seed(opts.seed)
        .threads(opts.threads);
    if let Some(g) = opts.min_goodness {
        builder = builder.min_goodness(g);
    }
    if let Some(path) = &opts.trace {
        builder = builder.trace(path);
    }
    let observer = if opts.progress || opts.log_level > Level::Off {
        Observer::with_sink(
            Arc::new(StderrSink::new(opts.progress)),
            opts.log_level.max(Level::Error),
        )
    } else {
        Observer::new()
    };

    let mut budget = RunBudget::unlimited();
    if let Some(steps) = opts.step_budget {
        budget = budget.steps(steps);
    }
    if let Some(secs) = opts.time_budget {
        budget = budget.wall(Duration::from_secs_f64(secs));
    }
    if let Some(bytes) = opts.mem_budget {
        budget = budget.memory(bytes);
    }
    let guard = Guard::new(budget);

    let outcome = match builder.build().fit_guarded(&data, &observer, &guard) {
        Ok(outcome) => outcome,
        Err(e) => {
            // Even a failed run flushes its telemetry so partial phase
            // timings and counters are not lost.
            write_metrics(opts, &observer, None, None, data.len(), guard.elapsed());
            return Err(e);
        }
    };
    let model = outcome.model();
    let stats = model.stats();
    eprintln!(
        "clustered sample of {} (avg degree {:.1}) into {} clusters, {} outliers, in {:?}",
        stats.sample_size,
        stats.avg_degree,
        model.num_clusters(),
        model.outliers().len(),
        stats.timings.total
    );

    // Report.
    if labels.is_empty() {
        println!("cluster sizes: {:?}", model.cluster_sizes());
    } else {
        let truth = densify_labels(&labels);
        let pred: Vec<Option<u32>> = model.assignments().iter().map(|a| a.map(|c| c.0)).collect();
        println!("cluster  size  class-breakdown");
        for (i, (size, classes)) in cluster_breakdown(&pred, &truth)?.iter().enumerate() {
            println!("C{i:<6}  {size:<4}  {classes:?}");
        }
        println!(
            "accuracy (optimal matching) = {:.4}, purity = {:.4}",
            matched_accuracy(&pred, &truth)?,
            purity(&pred, &truth)?
        );
    }
    if opts.summary_top > 0 {
        for (i, s) in ClusterSummary::compute_all(&data, model.clusters(), 0.5)
            .iter()
            .enumerate()
        {
            println!(
                "C{i} characteristic items: {}",
                s.describe(&data, opts.summary_top)
            );
        }
    }

    if let Some(path) = &opts.output {
        let io_err = |e: std::io::Error| RockError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        let mut file = std::io::BufWriter::new(std::fs::File::create(path).map_err(io_err)?);
        write_assignments(&mut file, model.assignments()).map_err(io_err)?;
        eprintln!("assignments written to {}", path.display());
    }

    if let Some(path) = &opts.save_model {
        let snapshot = ModelSnapshot::from_model(
            &data,
            model,
            opts.theta,
            MarketBasket.f(opts.theta),
            SimilarityKind::Jaccard,
            opts.outlier_policy,
            &LabelingConfig::default(),
            opts.seed,
        )?;
        snapshot.save(path)?;
        eprintln!(
            "model snapshot ({} clusters, {} representatives) written to {}",
            snapshot.num_clusters(),
            snapshot.representatives().total(),
            path.display()
        );
    }

    write_metrics(
        opts,
        &observer,
        Some(model),
        outcome.degradation(),
        data.len(),
        stats.timings.total,
    );

    if let Some(d) = outcome.degradation() {
        println!("degraded: {d}");
        match opts.on_error {
            OnError::Recover => {
                eprintln!("accepting partial partition (--on-error recover)");
            }
            OnError::Fail => {
                return Err(match d.reason {
                    TripReason::Cancelled => RockError::Cancelled,
                    _ => RockError::BudgetExhausted {
                        reason: d.reason.name().to_owned(),
                        phase: d.phase.name().to_owned(),
                    },
                });
            }
        }
    }
    Ok(())
}

/// Loads `opts.input` and maps every record into the snapshot's item-id
/// space (table cells or basket item names, re-interned through the
/// snapshot's vocabulary).
fn load_label_input(
    opts: &LabelOptions,
    snapshot: &ModelSnapshot,
) -> Result<Vec<Transaction>, RockError> {
    match opts.format {
        Format::Table => {
            let load = LoadConfig {
                label: opts.label,
                ignore_columns: opts.ignore.clone(),
                missing: opts.missing.clone(),
                mode: IngestMode::Strict,
                ..LoadConfig::default()
            };
            let loaded = load_labeled(&opts.input, &load)?;
            let table = &loaded.table;
            let attrs: Vec<_> = table.schema().iter().map(|(_, a)| a).collect();
            table
                .rows()
                .map(|row| {
                    // Recover the textual cells (the loader interned them
                    // into its own schema) and re-map them through the
                    // *snapshot's* vocabulary.
                    let cells: Vec<&str> = row
                        .iter()
                        .enumerate()
                        .map(|(j, cell)| {
                            cell.and_then(|code| attrs[j].value(code))
                                .unwrap_or(&opts.missing)
                        })
                        .collect();
                    snapshot.transaction_from_cells(&cells, &opts.missing)
                })
                .collect::<Result<_, _>>()
        }
        Format::Basket => {
            let data = load_baskets(&opts.input, None)?;
            let vocab = data.vocabulary().cloned().unwrap_or_default();
            data.iter()
                .map(|t| {
                    let names: Vec<&str> = t
                        .items()
                        .iter()
                        .filter_map(|&i| vocab.key(ItemId(i)).map(|k| k.value.as_str()))
                        .collect();
                    snapshot.transaction_from_basket(names)
                })
                .collect::<Result<_, _>>()
        }
    }
}

/// Appends `suffix` to `path`'s file name (`out.txt` → `out.txt.ckpt`).
fn sibling(path: &std::path::Path, suffix: &str) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(suffix);
    path.with_file_name(name)
}

/// The `label --stream` path: ensure a `rock-cache/v1` cache exists for
/// the input, then label it chunk-by-chunk through the crash-safe
/// streaming pipeline. A pre-existing checkpoint resumes; a memory-budget
/// trip degrades to a valid partial assignments file, keeps the
/// checkpoint, and exits 6 so a rerun can finish.
fn run_label_stream(opts: &LabelOptions, snapshot: &ModelSnapshot) -> Result<(), RockError> {
    let Some(output) = &opts.output else {
        // parse_label_args rejects this; keep the error path total anyway.
        return Err(RockError::Io {
            path: "<stdout>".to_owned(),
            message: "--stream requires --output".to_owned(),
        });
    };
    let cache_path = opts
        .cache
        .clone()
        .unwrap_or_else(|| sibling(&opts.input, ".rockcache"));
    if !cache_path.exists() {
        let data = load_label_input(opts, snapshot)?;
        build_cache(&cache_path, snapshot.universe(), opts.chunk_rows, &data)?;
        eprintln!(
            "built cache {} ({} rows, {} rows/chunk)",
            cache_path.display(),
            data.len(),
            opts.chunk_rows
        );
    }
    let cache = DatasetCache::open(&cache_path)?;
    eprintln!(
        "streaming {} rows in {} chunks from {}",
        cache.total_rows(),
        cache.total_chunks(),
        cache_path.display()
    );

    let checkpoint = opts
        .checkpoint
        .clone()
        .unwrap_or_else(|| sibling(output, ".ckpt"));
    let mut budget = RunBudget::unlimited();
    if let Some(bytes) = opts.mem_budget {
        budget = budget.memory(bytes);
    }
    let guard = Guard::new(budget);
    let observer = Observer::new();
    let outcome = StreamLabeler::new(snapshot).threads(opts.threads).run(
        &cache,
        output,
        &checkpoint,
        &guard,
        &observer,
    )?;
    match outcome {
        StreamOutcome::Complete(stats) => {
            eprintln!(
                "labeled {} rows in {} chunks{}: {} assigned, {} outliers -> {}",
                stats.rows,
                stats.chunks_done,
                if stats.resumed { " (resumed)" } else { "" },
                stats.labeled,
                stats.outliers,
                output.display()
            );
            Ok(())
        }
        StreamOutcome::Degraded { stats, degradation } => {
            eprintln!(
                "degraded after {} of {} rows: {degradation}",
                stats.rows,
                cache.total_rows()
            );
            if checkpoint.exists() {
                eprintln!(
                    "partial labeling written to {}; checkpoint kept at {} — rerun to finish",
                    output.display(),
                    checkpoint.display()
                );
            } else {
                // Tripped before the first chunk was durable: nothing to
                // resume from, a rerun starts over.
                eprintln!(
                    "partial labeling written to {}; no chunk completed — rerun to start over",
                    output.display()
                );
            }
            Err(match degradation.reason {
                TripReason::Cancelled => RockError::Cancelled,
                _ => RockError::BudgetExhausted {
                    reason: degradation.reason.name().to_owned(),
                    phase: degradation.phase.name().to_owned(),
                },
            })
        }
        StreamOutcome::Paused(stats) => {
            // Unreachable from the CLI (no chunk cap is set), but keep the
            // match total: report and let a rerun resume.
            eprintln!(
                "paused after {} chunks; rerun the same command to resume",
                stats.chunks_done
            );
            Ok(())
        }
    }
}

/// Batch-labels `opts.input` against a saved snapshot: maps every record
/// into item-id space via the snapshot's vocabulary, applies the §4.2
/// rule and writes `rock-assignments v1` to `--output` or stdout. No RNG
/// is involved — output is byte-identical across invocations.
fn run_label(opts: &LabelOptions) -> Result<(), RockError> {
    let snapshot = ModelSnapshot::load(&opts.model)?;
    eprintln!(
        "loaded rock-model/v1 snapshot: {} clusters, {} representatives, theta = {}, policy = {}",
        snapshot.num_clusters(),
        snapshot.representatives().total(),
        snapshot.theta(),
        snapshot.policy().name()
    );

    if opts.stream {
        return run_label_stream(opts, &snapshot);
    }

    let transactions = load_label_input(opts, &snapshot)?;

    let assignments: Vec<Option<ClusterId>> = transactions
        .iter()
        .map(|t| {
            snapshot
                .label(t)
                .map(|c| ClusterId(rock::core::cast::usize_to_u32(c)))
        })
        .collect();
    let assigned = assignments.iter().filter(|a| a.is_some()).count();
    eprintln!(
        "labeled {} records: {} assigned, {} outliers",
        assignments.len(),
        assigned,
        assignments.len() - assigned
    );

    match &opts.output {
        Some(path) => {
            let io_err = |e: std::io::Error| RockError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            };
            let mut file = std::io::BufWriter::new(std::fs::File::create(path).map_err(io_err)?);
            write_assignments(&mut file, &assignments).map_err(io_err)?;
            eprintln!("labels written to {}", path.display());
        }
        None => {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            write_assignments(&mut out, &assignments).map_err(|e| RockError::Io {
                path: "<stdout>".to_owned(),
                message: e.to_string(),
            })?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let command = match parse_command(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let result = match &command {
        Command::Fit(opts) => run(opts),
        Command::Label(opts) => run_label(opts),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn requires_mandatory_flags() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--input", "x.csv"]).is_err());
        assert!(parse(&["--input", "x.csv", "--k", "2"]).is_err());
        assert!(parse(&["--input", "x.csv", "--k", "2", "--theta", "0.5"]).is_ok());
    }

    #[test]
    fn parses_basket_format() {
        let o = parse(&[
            "--input", "b.txt", "--k", "2", "--theta", "0.4", "--format", "basket",
        ])
        .unwrap();
        assert_eq!(o.format, Format::Basket);
        assert!(
            parse(&["--input", "b.txt", "--k", "2", "--theta", "0.4", "--format", "json",])
                .is_err()
        );
    }

    #[test]
    fn end_to_end_on_basket_file() {
        let dir = std::env::temp_dir().join("rock-cli-basket-test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("baskets.txt");
        let mut text = String::new();
        for i in 0..6 {
            text.push_str(&format!("bread milk butter jam{i}\n"));
        }
        for i in 0..6 {
            text.push_str(&format!("charcoal burgers buns sauce{i}\n"));
        }
        std::fs::write(&input, text).unwrap();
        let opts = Options {
            input: input.clone(),
            format: Format::Basket,
            k: 2,
            theta: 0.4,
            label: LabelPosition::None,
            ignore: vec![],
            missing: "?".into(),
            sample: SampleStrategy::All,
            min_goodness: None,
            seed: 1,
            threads: 1,
            summary_top: 2,
            output: None,
            metrics: None,
            progress: false,
            log_level: Level::Off,
            time_budget: None,
            step_budget: None,
            mem_budget: None,
            on_error: OnError::Fail,
            save_model: None,
            outlier_policy: OutlierPolicy::Mark,
            trace: None,
        };
        run(&opts).unwrap();
        std::fs::remove_file(input).ok();
    }

    #[test]
    fn parses_full_flag_set() {
        let o = parse(&[
            "--input",
            "d.csv",
            "--k",
            "3",
            "--theta",
            "0.7",
            "--label",
            "first",
            "--ignore",
            "0,2",
            "--missing",
            "NA",
            "--sample",
            "500",
            "--min-goodness",
            "0.1",
            "--seed",
            "9",
            "--threads",
            "4",
            "--summary",
            "5",
            "--output",
            "out.txt",
            "--metrics",
            "m.json",
            "--progress",
            "--log-level",
            "debug",
        ])
        .unwrap();
        assert_eq!(o.k, 3);
        assert_eq!(o.theta, 0.7);
        assert_eq!(o.label, LabelPosition::First);
        assert_eq!(o.ignore, vec![0, 2]);
        assert_eq!(o.missing, "NA");
        assert_eq!(o.sample, SampleStrategy::Fixed(500));
        assert_eq!(o.min_goodness, Some(0.1));
        assert_eq!(o.seed, 9);
        assert_eq!(o.threads, 4);
        assert_eq!(o.summary_top, 5);
        assert_eq!(o.output, Some(PathBuf::from("out.txt")));
        assert_eq!(o.metrics, Some(PathBuf::from("m.json")));
        assert!(o.progress);
        assert_eq!(o.log_level, Level::Debug);
    }

    #[test]
    fn parses_budget_flags() {
        let o = parse(&[
            "--input",
            "d.csv",
            "--k",
            "2",
            "--theta",
            "0.5",
            "--time-budget",
            "1.5",
            "--step-budget",
            "100",
            "--mem-budget",
            "64M",
            "--on-error",
            "recover",
        ])
        .unwrap();
        assert_eq!(o.time_budget, Some(1.5));
        assert_eq!(o.step_budget, Some(100));
        assert_eq!(o.mem_budget, Some(64 << 20));
        assert_eq!(o.on_error, OnError::Recover);
    }

    #[test]
    fn budgets_default_to_unlimited_and_fail() {
        let o = parse(&["--input", "x", "--k", "2", "--theta", "0.5"]).unwrap();
        assert_eq!(o.time_budget, None);
        assert_eq!(o.step_budget, None);
        assert_eq!(o.mem_budget, None);
        assert_eq!(o.on_error, OnError::Fail);
    }

    #[test]
    fn mem_budget_suffixes() {
        assert_eq!(parse_mem_budget("1024").unwrap(), 1024);
        assert_eq!(parse_mem_budget("512K").unwrap(), 512 << 10);
        assert_eq!(parse_mem_budget("64m").unwrap(), 64 << 20);
        assert_eq!(parse_mem_budget("2G").unwrap(), 2 << 30);
        assert!(parse_mem_budget("lots").is_err());
        assert!(parse_mem_budget("99999999999G").is_err());
    }

    #[test]
    fn rejects_bad_budget_values() {
        assert!(parse(&[
            "--input",
            "x",
            "--k",
            "2",
            "--theta",
            "0.5",
            "--time-budget",
            "-1",
        ])
        .is_err());
        assert!(parse(&[
            "--input",
            "x",
            "--k",
            "2",
            "--theta",
            "0.5",
            "--on-error",
            "panic",
        ])
        .is_err());
    }

    #[test]
    fn degraded_run_recovers_with_metrics() {
        let dir = std::env::temp_dir().join("rock-cli-degraded-test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("toy.csv");
        let mut csv = String::new();
        for _ in 0..10 {
            csv.push_str("a,b,c,left\n");
            csv.push_str("x,y,z,right\n");
        }
        std::fs::write(&input, csv).unwrap();
        let metrics = dir.join("degraded-metrics.json");
        let mut opts = Options {
            input: input.clone(),
            format: Format::Table,
            k: 2,
            theta: 0.5,
            label: LabelPosition::Last,
            ignore: vec![],
            missing: "?".into(),
            sample: SampleStrategy::All,
            min_goodness: None,
            seed: 1,
            threads: 1,
            summary_top: 0,
            output: None,
            metrics: Some(metrics.clone()),
            progress: false,
            log_level: Level::Off,
            time_budget: None,
            step_budget: Some(3),
            mem_budget: None,
            on_error: OnError::Recover,
            save_model: None,
            outlier_policy: OutlierPolicy::Mark,
            trace: None,
        };
        // Recover: the degraded run is accepted.
        run(&opts).unwrap();
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("\"degradation\""));
        assert!(json.contains("\"step-budget\""));
        // Fail: the same trip becomes a budget error (exit code 6).
        opts.on_error = OnError::Fail;
        let err = run(&opts).unwrap_err();
        assert!(matches!(err, RockError::BudgetExhausted { .. }));
        assert_eq!(err.exit_code(), 6);
        std::fs::remove_file(input).ok();
        std::fs::remove_file(metrics).ok();
    }

    #[test]
    fn error_exit_still_writes_metrics() {
        let dir = std::env::temp_dir().join("rock-cli-error-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("tiny.csv");
        std::fs::write(&input, "a,b,one\nc,d,two\n").unwrap();
        let metrics = dir.join("error-metrics.json");
        let opts = Options {
            input: input.clone(),
            format: Format::Table,
            k: 99, // more clusters than points: validation error
            theta: 0.5,
            label: LabelPosition::Last,
            ignore: vec![],
            missing: "?".into(),
            sample: SampleStrategy::All,
            min_goodness: None,
            seed: 1,
            threads: 1,
            summary_top: 0,
            output: None,
            metrics: Some(metrics.clone()),
            progress: false,
            log_level: Level::Off,
            time_budget: None,
            step_budget: None,
            mem_budget: None,
            on_error: OnError::Fail,
            save_model: None,
            outlier_policy: OutlierPolicy::Mark,
            trace: None,
        };
        let err = run(&opts).unwrap_err();
        assert!(matches!(err, RockError::InvalidK { .. }));
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("\"schema\": \"rock-metrics/v1\""));
        assert!(!json.contains("\"degradation\""));
        std::fs::remove_file(input).ok();
        std::fs::remove_file(metrics).ok();
    }

    #[test]
    fn recover_mode_quarantines_dirty_input() {
        let dir = std::env::temp_dir().join("rock-cli-lenient-test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("dirty.csv");
        let mut csv = String::new();
        for _ in 0..10 {
            csv.push_str("a,b,c,left\n");
            csv.push_str("x,y,z,right\n");
        }
        csv.push_str("oops-short-row\n");
        std::fs::write(&input, csv).unwrap();
        let opts = Options {
            input: input.clone(),
            format: Format::Table,
            k: 2,
            theta: 0.5,
            label: LabelPosition::Last,
            ignore: vec![],
            missing: "?".into(),
            sample: SampleStrategy::All,
            min_goodness: None,
            seed: 1,
            threads: 1,
            summary_top: 0,
            output: None,
            metrics: None,
            progress: false,
            log_level: Level::Off,
            time_budget: None,
            step_budget: None,
            mem_budget: None,
            on_error: OnError::Recover,
            save_model: None,
            outlier_policy: OutlierPolicy::Mark,
            trace: None,
        };
        run(&opts).unwrap();
        // Strict mode fails on the same file with a CSV error (exit 4).
        let strict = Options {
            on_error: OnError::Fail,
            ..opts
        };
        let err = run(&strict).unwrap_err();
        assert!(matches!(err, RockError::Csv { .. }));
        assert_eq!(err.exit_code(), 4);
        std::fs::remove_file(input).ok();
    }

    #[test]
    fn parses_chernoff_and_label_index() {
        let o = parse(&[
            "--input",
            "d.csv",
            "--k",
            "2",
            "--theta",
            "0.5",
            "--chernoff",
            "100,0.25,0.05",
            "--label",
            "3",
        ])
        .unwrap();
        assert_eq!(
            o.sample,
            SampleStrategy::Chernoff {
                u_min: 100,
                xi: 0.25,
                delta: 0.05
            }
        );
        assert_eq!(o.label, LabelPosition::Column(3));
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse(&["--input", "x", "--k", "two", "--theta", "0.5"]).is_err());
        assert!(parse(&[
            "--input",
            "x",
            "--k",
            "2",
            "--theta",
            "0.5",
            "--chernoff",
            "1,2"
        ])
        .is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--help"]).is_err());
        assert!(parse(&[
            "--input",
            "x",
            "--k",
            "2",
            "--theta",
            "0.5",
            "--log-level",
            "verbose",
        ])
        .is_err());
    }

    #[test]
    fn parses_save_model_and_outlier_policy() {
        let o = parse(&[
            "--input",
            "d.csv",
            "--k",
            "2",
            "--theta",
            "0.5",
            "--save-model",
            "m.rockmodel",
            "--outlier-policy",
            "nearest",
            "--trace",
            "fit.trace",
        ])
        .unwrap();
        assert_eq!(o.save_model, Some(PathBuf::from("m.rockmodel")));
        assert_eq!(o.outlier_policy, OutlierPolicy::Nearest);
        assert_eq!(o.trace, Some(PathBuf::from("fit.trace")));
        // Defaults: no snapshot, paper's mark-as-outlier policy, no trace.
        let o = parse(&["--input", "d.csv", "--k", "2", "--theta", "0.5"]).unwrap();
        assert_eq!(o.save_model, None);
        assert_eq!(o.outlier_policy, OutlierPolicy::Mark);
        assert_eq!(o.trace, None);
        assert!(parse(&[
            "--input",
            "d.csv",
            "--k",
            "2",
            "--theta",
            "0.5",
            "--outlier-policy",
            "drop",
        ])
        .is_err());
    }

    #[test]
    fn parses_label_subcommand() {
        let cmd = parse_command(
            [
                "label",
                "--model",
                "m.rockmodel",
                "--input",
                "new.csv",
                "--format",
                "table",
                "--label",
                "last",
                "--missing",
                "NA",
                "--output",
                "out.txt",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        let Command::Label(o) = cmd else {
            panic!("expected label subcommand");
        };
        assert_eq!(o.model, PathBuf::from("m.rockmodel"));
        assert_eq!(o.input, PathBuf::from("new.csv"));
        assert_eq!(o.label, LabelPosition::Last);
        assert_eq!(o.missing, "NA");
        assert_eq!(o.output, Some(PathBuf::from("out.txt")));
        // --model and --input are both required.
        assert!(parse_label_args(["--model".to_owned(), "m".to_owned()]).is_err());
        assert!(parse_label_args(["--input".to_owned(), "i".to_owned()]).is_err());
        // Without the leading `label` token we are in fit mode.
        assert!(matches!(
            parse_command(
                ["--input", "x", "--k", "2", "--theta", "0.5"]
                    .iter()
                    .map(|s| s.to_string())
            ),
            Ok(Command::Fit(_))
        ));
    }

    #[test]
    fn save_model_then_label_roundtrip() {
        let dir = std::env::temp_dir().join("rock-cli-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("toy.csv");
        let mut csv = String::new();
        for _ in 0..10 {
            csv.push_str("a,b,c,left\n");
            csv.push_str("x,y,z,right\n");
        }
        std::fs::write(&input, &csv).unwrap();
        let model_path = dir.join("toy.rockmodel");
        let opts = Options {
            input: input.clone(),
            format: Format::Table,
            k: 2,
            theta: 0.5,
            label: LabelPosition::Last,
            ignore: vec![],
            missing: "?".into(),
            sample: SampleStrategy::All,
            min_goodness: None,
            seed: 1,
            threads: 1,
            summary_top: 0,
            output: None,
            metrics: None,
            progress: false,
            log_level: Level::Off,
            time_budget: None,
            step_budget: None,
            mem_budget: None,
            on_error: OnError::Fail,
            save_model: Some(model_path.clone()),
            outlier_policy: OutlierPolicy::Mark,
            trace: None,
        };
        run(&opts).unwrap();

        // The snapshot is loadable and canonically serialized:
        // load → save produces byte-identical content.
        let snap = ModelSnapshot::load(&model_path).unwrap();
        assert_eq!(snap.num_clusters(), 2);
        let original = std::fs::read(&model_path).unwrap();
        let resaved = dir.join("resaved.rockmodel");
        snap.save(&resaved).unwrap();
        assert_eq!(std::fs::read(&resaved).unwrap(), original);

        // Batch labeling assigns every record of the training file to a
        // cluster (the file has two clean blocks, no outliers).
        let labels_path = dir.join("labels.txt");
        let label_opts = LabelOptions {
            model: model_path.clone(),
            input: input.clone(),
            format: Format::Table,
            label: LabelPosition::Last,
            ignore: vec![],
            missing: "?".into(),
            output: Some(labels_path.clone()),
            stream: false,
            cache: None,
            checkpoint: None,
            chunk_rows: 4096,
            mem_budget: None,
            threads: 1,
        };
        run_label(&label_opts).unwrap();
        let text = std::fs::read_to_string(&labels_path).unwrap();
        assert!(text.starts_with("rock-assignments v1"));
        assert!(text.contains("n=20 k=2 outliers=0"));

        // Labeling is deterministic: a second pass is byte-identical.
        let labels2 = dir.join("labels2.txt");
        run_label(&LabelOptions {
            output: Some(labels2.clone()),
            ..label_opts
        })
        .unwrap();
        assert_eq!(
            std::fs::read(&labels_path).unwrap(),
            std::fs::read(&labels2).unwrap()
        );

        for f in [&input, &model_path, &resaved, &labels_path, &labels2] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn parses_streaming_label_flags() {
        let args = [
            "--model",
            "m.rockmodel",
            "--input",
            "big.baskets",
            "--format",
            "basket",
            "--output",
            "out.txt",
            "--stream",
            "--cache",
            "big.rockcache",
            "--checkpoint",
            "run.ckpt",
            "--chunk-rows",
            "1000",
            "--mem-budget",
            "64M",
            "--threads",
            "2",
        ];
        let o = parse_label_args(args.iter().map(|s| s.to_string())).unwrap();
        assert!(o.stream);
        assert_eq!(o.cache, Some(PathBuf::from("big.rockcache")));
        assert_eq!(o.checkpoint, Some(PathBuf::from("run.ckpt")));
        assert_eq!(o.chunk_rows, 1000);
        assert_eq!(o.mem_budget, Some(64 << 20));
        assert_eq!(o.threads, 2);
        // Defaults.
        let o = parse_label_args(
            ["--model", "m", "--input", "i"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(!o.stream);
        assert_eq!(o.chunk_rows, 4096);
        // --stream without --output is a usage error, as is --chunk-rows 0.
        assert!(parse_label_args(
            ["--model", "m", "--input", "i", "--stream"]
                .iter()
                .map(|s| s.to_string())
        )
        .is_err());
        assert!(parse_label_args(
            ["--model", "m", "--input", "i", "--chunk-rows", "0"]
                .iter()
                .map(|s| s.to_string())
        )
        .is_err());
    }

    #[test]
    fn streamed_label_matches_batch_label() {
        let dir = std::env::temp_dir().join("rock-cli-stream-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("toy.csv");
        let mut csv = String::new();
        for _ in 0..10 {
            csv.push_str("a,b,c,left\n");
            csv.push_str("x,y,z,right\n");
        }
        std::fs::write(&input, &csv).unwrap();
        let model_path = dir.join("toy.rockmodel");
        run(&Options {
            input: input.clone(),
            format: Format::Table,
            k: 2,
            theta: 0.5,
            label: LabelPosition::Last,
            ignore: vec![],
            missing: "?".into(),
            sample: SampleStrategy::All,
            min_goodness: None,
            seed: 1,
            threads: 1,
            summary_top: 0,
            output: None,
            metrics: None,
            progress: false,
            log_level: Level::Off,
            time_budget: None,
            step_budget: None,
            mem_budget: None,
            on_error: OnError::Fail,
            save_model: Some(model_path.clone()),
            outlier_policy: OutlierPolicy::Mark,
            trace: None,
        })
        .unwrap();

        let batch_out = dir.join("batch.txt");
        let base = LabelOptions {
            model: model_path.clone(),
            input: input.clone(),
            format: Format::Table,
            label: LabelPosition::Last,
            ignore: vec![],
            missing: "?".into(),
            output: Some(batch_out.clone()),
            stream: false,
            cache: None,
            checkpoint: None,
            chunk_rows: 7, // short final chunk exercised
            mem_budget: None,
            threads: 1,
        };
        run_label(&base).unwrap();

        let stream_out = dir.join("stream.txt");
        run_label(&LabelOptions {
            output: Some(stream_out.clone()),
            stream: true,
            ..base.clone()
        })
        .unwrap();
        assert_eq!(
            std::fs::read(&batch_out).unwrap(),
            std::fs::read(&stream_out).unwrap(),
            "streamed output must be byte-identical to batch output"
        );
        // The cache was built beside the input and the checkpoint removed.
        assert!(sibling(&input, ".rockcache").exists());
        assert!(!sibling(&stream_out, ".ckpt").exists());
        // A second streamed run reuses the cache and stays identical.
        let stream2 = dir.join("stream2.txt");
        run_label(&LabelOptions {
            output: Some(stream2.clone()),
            stream: true,
            ..base
        })
        .unwrap();
        assert_eq!(
            std::fs::read(&stream_out).unwrap(),
            std::fs::read(&stream2).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn label_subcommand_rejects_corrupt_snapshot() {
        let dir = std::env::temp_dir().join("rock-cli-corrupt-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("bad.rockmodel");
        std::fs::write(&model_path, "rock-model/v7\ngarbage\n").unwrap();
        let err = run_label(&LabelOptions {
            model: model_path.clone(),
            input: dir.join("whatever.csv"),
            format: Format::Table,
            label: LabelPosition::None,
            ignore: vec![],
            missing: "?".into(),
            output: None,
            stream: false,
            cache: None,
            checkpoint: None,
            chunk_rows: 4096,
            mem_budget: None,
            threads: 1,
        })
        .unwrap_err();
        assert!(matches!(err, RockError::SnapshotVersion { .. }));
        assert_eq!(err.exit_code(), 4);
        std::fs::remove_file(model_path).ok();
    }

    #[test]
    fn end_to_end_on_temp_csv() {
        let dir = std::env::temp_dir().join("rock-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("toy.csv");
        let mut csv = String::new();
        for _ in 0..10 {
            csv.push_str("a,b,c,left\n");
            csv.push_str("x,y,z,right\n");
        }
        std::fs::write(&input, csv).unwrap();
        let output = dir.join("assignments.txt");
        let metrics = dir.join("metrics.json");
        let opts = Options {
            input: input.clone(),
            format: Format::Table,
            k: 2,
            theta: 0.5,
            label: LabelPosition::Last,
            ignore: vec![],
            missing: "?".into(),
            sample: SampleStrategy::All,
            min_goodness: None,
            seed: 1,
            threads: 1,
            summary_top: 3,
            output: Some(output.clone()),
            metrics: Some(metrics.clone()),
            progress: false,
            log_level: Level::Off,
            time_budget: None,
            step_budget: None,
            mem_budget: None,
            on_error: OnError::Fail,
            save_model: None,
            outlier_policy: OutlierPolicy::Mark,
            trace: None,
        };
        run(&opts).unwrap();
        let written = std::fs::read_to_string(&output).unwrap();
        assert!(written.starts_with("rock-assignments v1"));
        assert!(written.contains("n=20 k=2"));
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("\"schema\": \"rock-metrics/v1\""));
        assert!(json.contains("\"similarity_comparisons\""));
        std::fs::remove_file(input).ok();
        std::fs::remove_file(output).ok();
        std::fs::remove_file(metrics).ok();
    }
}
