//! # rock
//!
//! Facade crate re-exporting the full ROCK workspace: the core link-based
//! clustering algorithm ([`rock_core`]), dataset loaders and synthetic
//! generators ([`rock_datasets`]), and the baseline algorithms used in the
//! paper's evaluation ([`rock_baselines`]).
//!
//! ```
//! use rock::prelude::*;
//!
//! let data: TransactionSet = vec![
//!     Transaction::new([0, 1, 2]),
//!     Transaction::new([0, 1, 3]),
//!     Transaction::new([0, 2, 3]),
//!     Transaction::new([10, 11, 12]),
//!     Transaction::new([10, 11, 13]),
//!     Transaction::new([10, 12, 13]),
//! ]
//! .into_iter()
//! .collect();
//! let model = RockBuilder::new(2, 0.4).build().fit(&data).unwrap();
//! assert_eq!(model.num_clusters(), 2);
//! ```

pub use rock_baselines as baselines;
pub use rock_core as core;
pub use rock_datasets as datasets;

/// Re-export of [`rock_core::prelude`] plus the dataset and baseline
/// surfaces most examples need.
pub mod prelude {
    pub use rock_core::prelude::*;
}
